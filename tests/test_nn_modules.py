"""Module/Parameter container mechanics."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3)
        self.fc2 = Linear(3, 2)
        self.gain = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.gain


class TestRegistration:
    def test_parameters_recursive(self):
        m = Toy()
        names = dict(m.named_parameters())
        assert set(names) == {
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
            "gain",
        }

    def test_num_parameters(self):
        m = Toy()
        assert m.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_shared_parameter_not_double_counted(self):
        m = Toy()
        m.fc2.weight = m.fc1.weight  # tie weights (shapes coincide? no)
        # retie with same object on both attrs of one module instead
        shared = Parameter(np.zeros((3, 3)))
        holder = Module()
        holder.a = shared
        holder.b = shared
        assert len(holder.parameters()) == 1

    def test_reassignment_replaces_entry(self):
        m = Module()
        m.w = Parameter(np.zeros(3))
        m.w = Parameter(np.ones(4))
        assert len(m.parameters()) == 1
        assert m.parameters()[0].shape == (4,)

    def test_attribute_before_init_raises(self):
        class Bad(Module):
            def __init__(self):
                self.oops = Parameter(np.zeros(1))  # no super().__init__()

        with pytest.raises(RuntimeError):
            Bad()

    def test_train_eval_recursive(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training

    def test_zero_grad(self):
        m = Toy()
        out = m(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_round_trip(self, rng):
        m1, m2 = Toy(), Toy()
        for p in m1.parameters():
            p.data = rng.normal(size=p.shape)
        m2.load_state_dict(m1.state_dict())
        for a, b in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        m = Toy()
        sd = m.state_dict()
        sd["gain"][:] = 99.0
        assert m.gain.data[0] == 1.0

    def test_missing_key_raises(self):
        m = Toy()
        sd = m.state_dict()
        del sd["gain"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = Toy()
        sd = m.state_dict()
        sd["gain"] = np.zeros(5)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_buffers_in_state_dict(self):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(4)
        sd = bn.state_dict()
        assert "running_mean" in sd and "running_var" in sd


class TestContainers:
    def test_sequential_forward(self, rng):
        seq = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        out = seq(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)

    def test_sequential_from_list(self):
        seq = Sequential([Linear(2, 2), ReLU()])
        assert len(seq) == 2

    def test_sequential_registers_params(self):
        seq = Sequential(Linear(4, 8), Linear(8, 2))
        assert len(seq.parameters()) == 4

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(ml.parameters()) == 4
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2))))

    def test_conv_repr(self):
        c = Conv2d(3, 8, 3, stride=2, padding=1, bias=False)
        assert "3->8" in repr(c)
