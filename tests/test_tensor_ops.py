"""Unit tests for elementwise / reduction / shape ops of the autodiff engine."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    check_gradients,
    cross_entropy,
    log_softmax,
    matmul,
    relu,
    softmax,
)
from repro.tensor.tensor import (
    getitem,
    pad2d,
    power,
    tensor_mean,
    tensor_sum,
    transpose,
)


def t(rng, *shape, scale=1.0):
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestForwardValues:
    def test_add(self, rng):
        a, b = t(rng, 3, 4), t(rng, 3, 4)
        np.testing.assert_allclose((a + b).data, a.data + b.data)

    def test_add_broadcast(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4)
        np.testing.assert_allclose((a + b).data, a.data + b.data)

    def test_scalar_ops(self, rng):
        a = t(rng, 5)
        np.testing.assert_allclose((a * 2.0).data, a.data * 2.0)
        np.testing.assert_allclose((1.0 - a).data, 1.0 - a.data)
        np.testing.assert_allclose((a / 4.0).data, a.data / 4.0)
        np.testing.assert_allclose((-a).data, -a.data)

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(4,))) + 0.5, requires_grad=True)
        np.testing.assert_allclose((a**3).data, a.data**3)

    def test_matmul_2d(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4, 5)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_batched(self, rng):
        a, b = t(rng, 2, 3, 4), t(rng, 4, 5)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_requires_2d(self, rng):
        with pytest.raises(ValueError):
            matmul(t(rng, 3), t(rng, 3))

    def test_sum_axis(self, rng):
        a = t(rng, 2, 3, 4)
        np.testing.assert_allclose(
            a.sum(axis=(0, 2)).data, a.data.sum(axis=(0, 2))
        )

    def test_mean_keepdims(self, rng):
        a = t(rng, 2, 3)
        np.testing.assert_allclose(
            a.mean(axis=1, keepdims=True).data,
            a.data.mean(axis=1, keepdims=True),
        )

    def test_reshape_flatten(self, rng):
        a = t(rng, 2, 3, 4)
        assert a.reshape((6, 4)).shape == (6, 4)
        assert a.flatten().shape == (2, 12)

    def test_transpose(self, rng):
        a = t(rng, 2, 3, 4)
        np.testing.assert_allclose(
            transpose(a, (2, 0, 1)).data, a.data.transpose(2, 0, 1)
        )

    def test_relu(self, rng):
        a = t(rng, 10)
        out = relu(a)
        np.testing.assert_allclose(out.data, np.maximum(a.data, 0.0))

    def test_log_softmax_normalizes(self, rng):
        a = t(rng, 4, 7, scale=5.0)
        probs = np.exp(log_softmax(a).data)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_matches_manual(self, rng):
        a = t(rng, 3, 5)
        z = a.data - a.data.max(axis=1, keepdims=True)
        manual = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
        np.testing.assert_allclose(softmax(a).data, manual, atol=1e-12)

    def test_cross_entropy_value(self, rng):
        logits = t(rng, 6, 4)
        labels = rng.integers(0, 4, size=6)
        lp = log_softmax(logits).data
        expected = -lp[np.arange(6), labels].mean()
        got = float(cross_entropy(logits, labels).data)
        assert got == pytest.approx(expected, abs=1e-12)

    def test_cross_entropy_sum_reduction(self, rng):
        logits = t(rng, 6, 4)
        labels = rng.integers(0, 4, size=6)
        mean = float(cross_entropy(logits, labels, reduction="mean").data)
        total = float(cross_entropy(logits, labels, reduction="sum").data)
        assert total == pytest.approx(6 * mean, rel=1e-12)

    def test_cross_entropy_shape_validation(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(t(rng, 6, 4), np.zeros(5, dtype=int))

    def test_pad2d(self, rng):
        a = t(rng, 1, 1, 3, 3)
        out = pad2d(a, 2)
        assert out.shape == (1, 1, 7, 7)
        np.testing.assert_allclose(out.data[0, 0, 2:-2, 2:-2], a.data[0, 0])

    def test_getitem(self, rng):
        a = t(rng, 5, 4)
        np.testing.assert_allclose(getitem(a, (slice(1, 3),)).data, a.data[1:3])


class TestGradients:
    def test_add_broadcast_grad(self, rng):
        check_gradients(lambda a, b: (a + b).sum(), [t(rng, 3, 4), t(rng, 4)])

    def test_mul_broadcast_grad(self, rng):
        check_gradients(
            lambda a, b: (a * b).sum(), [t(rng, 2, 3, 4), t(rng, 3, 1)]
        )

    def test_div_grad(self, rng):
        b = Tensor(np.abs(rng.normal(size=(3, 4))) + 1.0, requires_grad=True)
        check_gradients(lambda a, b: (a / b).sum(), [t(rng, 3, 4), b])

    def test_pow_grad(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
        check_gradients(lambda a: power(a, 2.5).sum(), [a])

    def test_matmul_grad(self, rng):
        check_gradients(
            lambda a, b: (a @ b).sum(), [t(rng, 3, 4), t(rng, 4, 2)]
        )

    def test_matmul_batched_grad(self, rng):
        check_gradients(
            lambda a, b: (a @ b).sum(), [t(rng, 2, 3, 4), t(rng, 4, 2)]
        )

    def test_sum_grad(self, rng):
        check_gradients(
            lambda a: (tensor_sum(a, axis=1) ** 2).sum(), [t(rng, 3, 4)]
        )

    def test_mean_grad(self, rng):
        check_gradients(
            lambda a: (tensor_mean(a, axis=(0, 2), keepdims=True) * a).sum(),
            [t(rng, 2, 3, 4)],
        )

    def test_reshape_transpose_grad(self, rng):
        check_gradients(
            lambda a: (transpose(a.reshape((6, 4)), (1, 0)) ** 2).sum(),
            [t(rng, 2, 3, 4)],
        )

    def test_relu_grad(self, rng):
        check_gradients(lambda a: relu(a).sum(), [t(rng, 4, 4)])

    def test_exp_log_sqrt_grad(self, rng):
        a = Tensor(np.abs(rng.normal(size=(6,))) + 0.5, requires_grad=True)
        check_gradients(lambda a: (a.exp() + a.log() + a.sqrt()).sum(), [a])

    def test_log_softmax_grad(self, rng):
        a = t(rng, 3, 5)
        w = rng.normal(size=(3, 5))
        check_gradients(lambda a: (log_softmax(a) * Tensor(w)).sum(), [a])

    def test_cross_entropy_grad(self, rng):
        logits = t(rng, 5, 7)
        labels = rng.integers(0, 7, size=5)
        check_gradients(lambda l: cross_entropy(l, labels), [logits])

    def test_cross_entropy_grad_is_softmax_minus_onehot(self, rng):
        logits = t(rng, 4, 3)
        labels = np.array([0, 2, 1, 2])
        loss = cross_entropy(logits, labels)
        loss.backward()
        probs = softmax(Tensor(logits.data)).data
        expected = probs.copy()
        expected[np.arange(4), labels] -= 1.0
        np.testing.assert_allclose(logits.grad, expected / 4.0, atol=1e-12)

    def test_getitem_grad(self, rng):
        check_gradients(
            lambda a: (getitem(a, (slice(0, 2),)) ** 2).sum(), [t(rng, 4, 3)]
        )

    def test_pad2d_grad(self, rng):
        check_gradients(lambda a: (pad2d(a, 1) ** 2).sum(), [t(rng, 2, 2, 3, 3)])
