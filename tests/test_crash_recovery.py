"""Kill-and-resume parity: the process runtime survives dead workers.

The headline durability guarantee: SIGKILL a stage worker process
mid-run, and the run still lands on **hex-identical** final weights and
losses to the uninterrupted golden, for every schedule — via two
independent mechanisms:

* **in-flight recovery** (``max_restarts``): the runner snapshots the
  engine at ``train()`` entry (a drain barrier), detects the dead
  worker (pipe EOF or the liveness watchdog — under ``fork`` sibling
  workers keep each other's pipe ends open, so EOF alone is not
  enough), respawns *all* workers from the snapshot and replays the
  partial batch;
* **on-disk resume** (:class:`DurableRun`): a run whose whole process
  died resumes from the last checkpoint file into freshly built
  objects (covered per-schedule in ``test_checkpoint.py``; here the
  crash is a real SIGKILL).

Lockstep mode pins the bit-exact matrix (free-running ``pb``/``1f1b``
are timing-dependent by design); a free-running synchronous schedule is
additionally recovered to its deterministic drained-update trajectory.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from functools import partial

import numpy as np
import pytest

from repro.data.loader import ResumableSampleStream
from repro.models.simple import small_cnn
from repro.pipeline import (
    DurableRun,
    PipelineExecutor,
    PipelineRuntimeError,
    ProcessPipelineRunner,
    model_fingerprint,
)
from repro.utils.rng import new_rng

pytestmark = pytest.mark.concurrency

STALL = 60.0
FACTORY = partial(small_cnn, num_classes=4, widths=(4,), seed=3)

SCHEDULES = {
    "pb": dict(mode="pb"),
    "fill_drain": dict(mode="fill_drain", update_size=4),
    "gpipe": dict(mode="gpipe", update_size=4, micro_batch_size=2),
    "1f1b": dict(mode="1f1b"),
}

LR, MOMENTUM, WEIGHT_DECAY = 0.05, 0.9, 1e-4


def _stream(n: int, seed: int = 9):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _sim_golden(kw: dict, X, Y):
    model = FACTORY()
    stats = PipelineExecutor(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY, **kw
    ).train(X, Y)
    return model_fingerprint(model), [float(l).hex() for l in stats.losses]


class _WorkerKiller:
    """SIGKILLs one stage worker once the run has made some progress.

    Waits until the runner has completed a couple of samples (so the
    kill lands mid-drive, with packets in flight) and then kills the
    requested worker process.  ``fired`` records whether a live process
    actually received the signal.
    """

    def __init__(self, runner, stage_index: int = 1, after_samples: int = 2):
        self.runner = runner
        self.stage_index = stage_index
        self.base = runner.samples_completed
        self.after = after_samples
        self.fired = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()
        return self

    def join(self):
        self._thread.join(30.0)

    def _run(self):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            procs = self.runner._procs
            if (
                self.runner.samples_completed >= self.base + self.after
                and len(procs) > self.stage_index
                and procs[self.stage_index].pid is not None
            ):
                try:
                    os.kill(procs[self.stage_index].pid, signal.SIGKILL)
                    self.fired = True
                except ProcessLookupError:  # pragma: no cover - raced exit
                    pass
                return
            time.sleep(0.002)


class TestKillAndRecoverParity:
    """The acceptance matrix: SIGKILL mid-run, auto-recover, hex parity."""

    @pytest.mark.parametrize("label", sorted(SCHEDULES))
    def test_sigkill_worker_recovers_bit_exact(self, label):
        kw = SCHEDULES[label]
        X, Y = _stream(24)
        gold_weights, gold_losses = _sim_golden(kw, X, Y)

        model = FACTORY()
        runner = ProcessPipelineRunner(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            lockstep=True, max_restarts=2, stall_timeout=STALL, **kw,
        )
        killer = _WorkerKiller(runner, stage_index=1).start()
        stats = runner.train(X, Y)
        killer.join()
        assert killer.fired, "killer never found a live worker"
        assert runner.restarts_used >= 1, (
            "worker was SIGKILLed but no recovery was taken"
        )
        assert model_fingerprint(model) == gold_weights, (
            f"{label}: recovered weights drifted from the golden"
        )
        assert [float(l).hex() for l in stats.losses] == gold_losses, (
            f"{label}: recovered losses drifted from the golden"
        )

    def test_sigkill_during_free_running_synchronous_schedule(self):
        """Free-running fill_drain stays sequential-SGDM-deterministic
        through a crash: recovery replays to the same final weights."""
        kw = SCHEDULES["fill_drain"]
        X, Y = _stream(24, seed=13)
        gold_weights, _ = _sim_golden(kw, X, Y)
        model = FACTORY()
        runner = ProcessPipelineRunner(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            lockstep=False, max_restarts=2, stall_timeout=STALL, **kw,
        )
        killer = _WorkerKiller(runner, stage_index=2).start()
        runner.train(X, Y)
        killer.join()
        assert killer.fired
        assert runner.restarts_used >= 1
        assert model_fingerprint(model) == gold_weights

    def test_without_recovery_raises_runtime_error(self):
        """failing-before pin: max_restarts=0 keeps the fail-fast
        contract — a SIGKILLed worker raises PipelineRuntimeError."""
        X, Y = _stream(24)
        model = FACTORY()
        runner = ProcessPipelineRunner(
            model, lr=LR, momentum=MOMENTUM, mode="pb", lockstep=True,
            max_restarts=0, stall_timeout=15.0,
        )
        killer = _WorkerKiller(runner, stage_index=1).start()
        with pytest.raises(PipelineRuntimeError):
            runner.train(X, Y)
        killer.join()
        # the runner cleans up and stays usable for a fresh run
        assert runner._procs == []
        assert runner._rings == []
        ok = runner.train(*_stream(6, seed=1))
        assert ok.samples == 6

    def test_restart_budget_exhausted_raises(self):
        """Workers that die on every attempt exhaust max_restarts and
        surface the underlying PipelineRuntimeError."""
        X, Y = _stream(12)
        Y = Y.copy()
        Y[3] = 10_000  # deterministic worker crash (bad label index)
        model = FACTORY()
        runner = ProcessPipelineRunner(
            model, lr=LR, mode="pb", lockstep=True, max_restarts=2,
            stall_timeout=15.0,
        )
        with pytest.raises(PipelineRuntimeError):
            runner.train(X, Y)
        assert runner.restarts_used == 2

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ProcessPipelineRunner(FACTORY(), lr=LR, max_restarts=-1)


class TestKillThenResumeFromDisk:
    """Whole-job death: the last on-disk snapshot restores a fresh
    runner that finishes bit-exactly — with the crash being a real
    SIGKILL mid-segment, not a polite stop."""

    def test_sigkill_resume_from_checkpoint_parity(self, tmp_path):
        kw = SCHEDULES["pb"]
        every = 8
        n = 24

        def build():
            model = FACTORY()
            runner = ProcessPipelineRunner(
                model, lr=LR, momentum=MOMENTUM,
                weight_decay=WEIGHT_DECAY, lockstep=True,
                stall_timeout=STALL, **kw,
            )
            X, Y = _stream(n, seed=77)
            stream = ResumableSampleStream(X, Y, 1, new_rng(4))
            return model, runner, stream

        # golden: uninterrupted, cadence-matched
        m_gold, r_gold, s_gold = build()
        gold = DurableRun(r_gold, s_gold, checkpoint_every=every).run()

        # crashed run: snapshot to disk; a worker is SIGKILLed in the
        # second segment and max_restarts=0 turns it into a fatal error
        # — the "process died" scenario
        path = str(tmp_path / "crash.ckpt")
        m_dead, r_dead, s_dead = build()
        killer = _WorkerKiller(r_dead, stage_index=1,
                               after_samples=every + 2).start()
        with pytest.raises(PipelineRuntimeError):
            DurableRun(
                r_dead, s_dead, checkpoint_path=path,
                checkpoint_every=every,
            ).run()
        killer.join()
        assert killer.fired

        # resume: fresh model/runner/stream, last snapshot, finish
        m_res, r_res, s_res = build()
        result = DurableRun.resume(path, r_res, s_res).run()
        assert model_fingerprint(m_res) == model_fingerprint(m_gold)
        assert [float(l).hex() for l in result.losses] == [
            float(l).hex() for l in gold.losses[every:]
        ]
