"""The serving front-end end to end: futures, batching determinism,
explicit overload behavior, the HTTP endpoint, and the ``serve``-marked
smoke (tiny model, process runtime, 200 requests, zero dropped or
duplicated responses, monotone request ids)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from functools import partial

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.serve import (
    InferenceSession,
    Overloaded,
    PipelineServer,
    run_closed_loop,
)

FACTORY = partial(small_cnn, num_classes=10, widths=(8, 16), seed=11)
SHAPE = (3, 8, 8)


def _requests(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n,) + SHAPE)


def _session(runtime: str = "threaded", micro_batch: int = 4, **kw):
    return InferenceSession(
        FACTORY(),
        runtime=runtime,
        micro_batch=micro_batch,
        sample_shape=SHAPE,
        model_factory=FACTORY,
        **kw,
    )


def _hex(a: np.ndarray) -> list[str]:
    return [v.hex() for v in np.asarray(a, dtype=np.float64).ravel()]


@pytest.mark.concurrency
class TestServerBasics:
    def test_submit_resolves_future_with_logits(self):
        with PipelineServer(_session()) as server:
            X = _requests(1)
            logits = server.submit(X[0]).result(10.0)
            assert logits.shape == (10,)

    def test_prestaged_requests_batch_deterministically(self):
        """Requests admitted before start() coalesce into consecutive
        admission-order packets of max_batch — and the per-request
        logits are then bit-exact with the offline forward over those
        same packets (the serving parity contract, end to end)."""
        session = _session(runtime="threaded", micro_batch=4)
        server = PipelineServer(session, max_batch=4, max_wait=0.5)
        X = _requests(12)
        futures = [server.submit(x) for x in X]  # before start: FIFO
        with server:
            got = np.stack([f.result(20.0) for f in futures])
        ref = session.forward_reference(X, micro_batch=4)
        assert _hex(got) == _hex(ref)
        sizes = [t.batch_size for t in server.stats.timings()]
        assert sizes == [4] * 12  # three full packets

    def test_request_shape_validated(self):
        with PipelineServer(_session()) as server:
            with pytest.raises(ValueError, match="shape"):
                server.submit(np.zeros((2, 2)))

    def test_stats_account_for_every_request(self):
        with PipelineServer(_session(), max_wait=0.001) as server:
            futures = [server.submit(x) for x in _requests(20)]
            for f in futures:
                f.result(20.0)
            snap = server.stats.snapshot()
        assert snap["completed"] == 20
        assert snap["rejected"] == 0 and snap["failed"] == 0
        # queue wait + pipeline time ~ latency for every request
        for t in server.stats.timings():
            assert t.latency >= t.queue_wait >= 0.0
            assert t.latency >= t.pipeline_time >= 0.0

    def test_failed_start_fails_prestaged_futures(self):
        """Requests staged before a start() that dies must not hang:
        their futures fail with the start error."""
        session = _session()
        server = PipelineServer(session)
        fut = server.submit(_requests(1)[0])
        boom = RuntimeError("no stream for you")

        def broken_open_stream():
            raise boom

        session.open_stream = broken_open_stream
        with pytest.raises(RuntimeError, match="no stream"):
            server.start()
        with pytest.raises(RuntimeError, match="no stream"):
            fut.result(1.0)
        server.stop()  # idempotent on the never-started path

    def test_stop_without_start_fails_staged_futures(self):
        server = PipelineServer(_session())
        fut = server.submit(_requests(1)[0])
        server.stop()
        with pytest.raises(Overloaded):
            fut.result(1.0)

    def test_server_is_single_use(self):
        """stop() closes the batcher for good; a restart would be a
        server that can never admit — refuse it loudly instead."""
        server = PipelineServer(_session())
        with server:
            server.submit(_requests(1)[0]).result(10.0)
        with pytest.raises(RuntimeError, match="single-use"):
            server.start()

    def test_max_batch_cannot_exceed_session_width(self):
        with pytest.raises(ValueError, match="micro_batch"):
            PipelineServer(_session(micro_batch=4), max_batch=8)

    def test_stop_fails_leftover_futures_loudly(self):
        session = _session()
        server = PipelineServer(session, max_wait=60.0, max_batch=4)
        # never started: admitted requests cannot complete.  The
        # request is younger than max_wait (60 s), so _fail_pending
        # must close the batcher itself to be able to drain it —
        # otherwise this future would hang until max_wait.
        fut = server.submit(_requests(1)[0])
        server._fail_pending(Overloaded("server stopped"))
        with pytest.raises(Overloaded):
            fut.result(1.0)
        assert server.stats.snapshot()["failed"] == 1


@pytest.mark.concurrency
class TestOverload:
    def test_saturation_is_explicit_backpressure_not_deadlock(self):
        """Flood a tiny admission queue: every submit either resolves
        or raises Overloaded — nothing hangs, nothing disappears."""
        session = _session(runtime="threaded", micro_batch=2, capacity=2)
        server = PipelineServer(
            session, max_batch=2, max_wait=0.0, max_queue=4
        )
        accepted, rejected = [], [0]
        with server:
            for x in _requests(200, seed=3):
                try:
                    accepted.append(server.submit(x))
                except Overloaded:
                    rejected[0] += 1
            results = [f.result(30.0) for f in accepted]
        assert len(results) == len(accepted)
        assert len(accepted) + rejected[0] == 200
        snap = server.stats.snapshot()
        assert snap["completed"] == len(accepted)
        assert snap["rejected"] == rejected[0]

    def test_closed_loop_clients_retry_through_backpressure(self):
        session = _session(runtime="threaded", micro_batch=4, capacity=2)
        server = PipelineServer(
            session, max_batch=4, max_wait=0.001, max_queue=8
        )
        with server:
            result = run_closed_loop(
                server.infer_one, _requests(8), num_requests=60,
                concurrency=6, label="retry",
            )
        assert len(result.outputs) == 60  # zero dropped despite rejections


@pytest.mark.concurrency
class TestHttpEndpoint:
    def test_infer_stats_healthz(self):
        session = _session()
        with PipelineServer(session) as server:
            host, port = server.serve_http()
            x = _requests(1)[0]
            body = json.dumps({"x": x.tolist()}).encode()
            req = urllib.request.Request(
                f"http://{host}:{port}/infer",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=10) as resp:
                payload = json.loads(resp.read())
            assert len(payload["logits"]) == 10
            assert payload["latency_ms"] > 0
            assert isinstance(payload["request_id"], int)
            # the response is the same math the session computes
            ref = session.infer(x[None]).outputs[0]
            assert np.allclose(payload["logits"], ref)
            with urllib.request.urlopen(
                f"http://{host}:{port}/stats", timeout=10
            ) as resp:
                stats = json.loads(resp.read())
            assert stats["completed"] >= 1
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as resp:
                health = json.loads(resp.read())
            assert health["ok"] is True
            assert health["fingerprint"] == session.fingerprint

    def test_bad_body_is_400_unknown_path_404(self):
        with PipelineServer(_session()) as server:
            host, port = server.serve_http()
            req = urllib.request.Request(
                f"http://{host}:{port}/infer", data=b"not json"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10
                )
            assert err.value.code == 404


@pytest.mark.serve
@pytest.mark.concurrency(timeout=300)
class TestServingSmoke:
    """The CI serving smoke: tiny model, process runtime, 200 requests."""

    def test_200_requests_process_runtime_none_lost(self):
        session = _session(runtime="process", micro_batch=8)
        server = PipelineServer(
            session, max_batch=8, max_wait=0.002, max_queue=64
        )
        X = _requests(32, seed=9)
        with server:
            result = run_closed_loop(
                server.infer_one, X, num_requests=200, concurrency=8,
                label="smoke",
            )
            snap = server.stats.snapshot()
        # zero dropped: exactly one response per request
        assert len(result.outputs) == 200
        assert sorted(result.outputs) == list(range(200))
        # zero duplicated + monotone ids: the batcher assigned each
        # admitted request exactly one gap-free, increasing id
        ids = sorted(t.request_id for t in server.stats.timings())
        assert ids == list(range(snap["completed"]))
        assert snap["completed"] == server.batcher.admitted
        assert snap["failed"] == 0
        # every response is the right math for its input
        ref = session.forward_reference(X, micro_batch=8)
        full = np.stack([ref[rid % 32] for rid in range(200)])
        got = np.stack([result.outputs[rid] for rid in range(200)])
        assert np.allclose(got, full, rtol=1e-9, atol=1e-12)
