"""Mixed-precision contracts: grids, scaling, parity and rejection.

Four layers of coverage for :mod:`repro.precision`:

* **Grid properties** (hypothesis): the simulated-bf16 round-trip is
  idempotent (the bf16 grid is a fixed point) and monotone (rounding
  never reorders values), and int8 quantization stays within half a
  quantization step of the input.
* **Loss-scaler semantics**: an overflow step leaves the optimizer's
  weights *and* velocity byte-for-byte unchanged (the bit-neutral skip),
  backs the scale off, and clears the gradients; clean steps under a
  scaler match the unscaled update within float64 noise.
* **Parity**: float32 tracks the float64 reference within the policy's
  tolerance on every schedule x every runtime (sim / threaded lockstep /
  process lockstep); bf16 tracks it within its (looser) tolerance; and
  ``precision="float64"`` is *hex-identical* to the default path — the
  reference contract of ``test_schedules_golden`` is untouched by the
  precision plumbing.
* **Rejection**: serving-only int8 cannot drive training; state dicts
  saved on one precision grid refuse to load onto another, naming the
  mode instead of silently casting.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.simple import small_cnn
from repro.optim import SGDM
from repro.pipeline import (
    ConcurrentPipelineRunner,
    PipelineExecutor,
    ProcessPipelineRunner,
)
from repro.pipeline.stage import PipelineStage
from repro.precision import (
    LossScaler,
    PrecisionPolicy,
    quantize_int8,
    resolve_precision,
    simulate_bf16,
)
from repro.nn import Parameter

from test_schedules_golden import GOLDEN, LR, MOMENTUM, SEED, WEIGHT_DECAY

# the golden workload (test_schedules_golden), reused so the float64
# re-pin below is a statement about the exact pinned numbers
FACTORY = partial(small_cnn, num_classes=4, widths=(4, 8), seed=SEED)

SCHEDULES = {
    "pb": dict(mode="pb"),
    "fill_drain": dict(mode="fill_drain", update_size=4),
    "gpipe": dict(mode="gpipe", update_size=4, micro_batch_size=4),
    "1f1b": dict(mode="1f1b"),
}


def _stream(n: int = 16, seed: int = 99):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _hex(arr) -> list[str]:
    return [float(v).hex() for v in np.asarray(arr, dtype=np.float64).ravel()]


# -- grid properties ---------------------------------------------------------

finite64 = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestBf16Grid:
    @given(st.lists(finite64, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_idempotent(self, values):
        """bf16(bf16(x)) == bf16(x) bit-for-bit: the grid is a fixed
        point, so re-truncating stored weights never drifts them."""
        x = np.asarray(values, dtype=np.float32)
        once = simulate_bf16(x)
        twice = simulate_bf16(once)
        assert once.dtype == np.float32
        assert once.tobytes() == twice.tobytes()

    @given(finite64, finite64)
    @settings(max_examples=200, deadline=None)
    def test_monotone(self, a, b):
        """x <= y implies bf16(x) <= bf16(y): round-to-nearest-even
        truncation never reorders values."""
        lo, hi = (a, b) if a <= b else (b, a)
        ra, rb = (
            simulate_bf16(np.float32(lo)),
            simulate_bf16(np.float32(hi)),
        )
        assert ra <= rb

    @given(finite64)
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bounded(self, a):
        """The bf16 grid keeps 8 mantissa bits: relative error < 2^-8
        for normal values."""
        x = np.float32(a)
        r = float(simulate_bf16(x))
        if np.isfinite(r) and abs(float(x)) > 1e-30:
            assert abs(r - float(x)) <= abs(float(x)) * 2.0**-8

    def test_specials_preserved(self):
        x = np.array([np.nan, np.inf, -np.inf, 0.0, -0.0], dtype=np.float32)
        r = simulate_bf16(x)
        assert np.isnan(r[0])
        assert r[1] == np.inf and r[2] == -np.inf
        assert r[3] == 0.0 and np.signbit(r[4])


class TestInt8Grid:
    @given(st.lists(finite64, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_quantization_error_bounded(self, values):
        x = np.asarray(values, dtype=np.float32)
        q, scale = quantize_int8(x)
        assert q.dtype == np.int8
        # symmetric per-tensor: error is at most half a step
        assert np.all(np.abs(q * scale - x) <= scale / 2 + 1e-12)

    def test_zero_tensor(self):
        q, scale = quantize_int8(np.zeros(4, dtype=np.float32))
        assert np.all(q == 0) and scale > 0


# -- loss-scaler semantics ---------------------------------------------------


def _toy_sgdm(precision="float32", scaler=None):
    rng = np.random.default_rng(3)
    dtype = np.float32 if precision in ("float32", "bf16") else np.float64
    params = [
        Parameter(rng.normal(size=(4, 3)).astype(dtype)),
        Parameter(rng.normal(size=(4,)).astype(dtype)),
    ]
    if precision == "bf16":
        for p in params:
            p.data = simulate_bf16(p.data)
    opt = SGDM(
        params, lr=0.05, momentum=0.9, weight_decay=1e-4,
        precision=precision, loss_scaler=scaler,
    )
    return params, opt


class TestLossScaler:
    def test_overflow_skip_is_bit_neutral(self):
        """An overflowed step mutates *nothing*: weights, master copies
        and velocity are byte-identical before and after."""
        scaler = LossScaler(init_scale=2.0**10)
        params, opt = _toy_sgdm("float32", scaler)
        # one clean step to make velocity non-trivial
        for p in params:
            p.grad = np.ones_like(p.data) * np.float32(scaler.scale * 0.01)
        opt.step()
        before_w = [p.data.tobytes() for p in params]
        before_v = [opt.velocity(p).tobytes() for p in params]
        before_m = [opt._master[id(p)].tobytes() for p in params]
        scale_before = scaler.scale
        for p in params:
            p.grad = np.full_like(p.data, np.inf)
        opt.step()
        assert [p.data.tobytes() for p in params] == before_w
        assert [opt.velocity(p).tobytes() for p in params] == before_v
        assert [opt._master[id(p)].tobytes() for p in params] == before_m
        assert scaler.scale == scale_before * scaler.backoff_factor
        assert scaler.overflow_skips == 1
        assert all(p.grad is None for p in params)  # grads consumed

    def test_nan_also_triggers_skip(self):
        scaler = LossScaler(init_scale=4.0)
        params, opt = _toy_sgdm("float32", scaler)
        before = [p.data.tobytes() for p in params]
        for p in params:
            p.grad = np.full_like(p.data, np.nan)
        opt.step()
        assert [p.data.tobytes() for p in params] == before
        assert scaler.overflow_skips == 1

    def test_scaled_update_matches_unscaled(self):
        """Scaling the gradients by S and stepping with a scaler at S is
        the same update as the unscaled step (to float64 master math)."""
        scaler = LossScaler(init_scale=2.0**8, growth_interval=10**9)
        params_s, opt_s = _toy_sgdm("float32", scaler)
        params_u, opt_u = _toy_sgdm("float32", None)
        rng = np.random.default_rng(11)
        for _ in range(3):
            for ps, pu in zip(params_s, params_u):
                g = rng.normal(size=ps.data.shape).astype(np.float32)
                ps.grad = g * np.float32(scaler.scale)
                pu.grad = g.copy()
            opt_s.step()
            opt_u.step()
        for ps, pu in zip(params_s, params_u):
            np.testing.assert_allclose(
                ps.data, pu.data, rtol=1e-6, atol=1e-7
            )

    def test_scaled_update_matches_unscaled_across_growth_tick(self):
        """The unscale factor on a growth tick is the *pre-growth* scale
        the gradients were actually produced under — growing the scale
        mid-step must not shrink that step's update by growth_factor."""
        scaler = LossScaler(init_scale=2.0**4, growth_interval=2)
        params_s, opt_s = _toy_sgdm("float32", scaler)
        params_u, opt_u = _toy_sgdm("float32", None)
        rng = np.random.default_rng(13)
        for _ in range(5):  # crosses growth ticks at steps 2 and 4
            live_scale = scaler.scale
            for ps, pu in zip(params_s, params_u):
                g = rng.normal(size=ps.data.shape).astype(np.float32)
                ps.grad = g * np.float32(live_scale)
                pu.grad = g.copy()
            opt_s.step()
            opt_u.step()
        assert scaler.scale > 2.0**4  # the scale really did grow
        for ps, pu in zip(params_s, params_u):
            np.testing.assert_allclose(
                ps.data, pu.data, rtol=1e-6, atol=1e-7
            )

    def test_growth_after_interval(self):
        scaler = LossScaler(init_scale=2.0, growth_interval=3)
        for _ in range(3):
            scaler.update(False)
        assert scaler.scale == 4.0

    def test_state_dict_round_trip(self):
        scaler = LossScaler(init_scale=2.0**6)
        scaler.update(True)
        scaler.update(False)
        fresh = LossScaler()
        fresh.load_state_dict(scaler.state_dict())
        assert fresh.scale == scaler.scale
        assert fresh.overflow_skips == scaler.overflow_skips


# -- parity across schedules and runtimes ------------------------------------


def _train_losses(runtime: str, mode_kw: dict, precision) -> np.ndarray:
    X, Y = _stream()
    model = FACTORY()
    common = dict(
        lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        precision=precision, **mode_kw,
    )
    if runtime == "sim":
        stats = PipelineExecutor(model, **common).train(X, Y)
    elif runtime == "threaded":
        stats = ConcurrentPipelineRunner(
            model, lockstep=True, **common
        ).train(X, Y)
    else:
        stats = ProcessPipelineRunner(
            model, lockstep=True, model_factory=FACTORY, **common
        ).train(X, Y)
    return np.asarray(stats.losses, dtype=np.float64)


@pytest.mark.parametrize("label", sorted(SCHEDULES))
class TestFloat64IsUntouched:
    def test_explicit_float64_matches_golden(self, label):
        """precision='float64' reproduces the pinned hex goldens — the
        reference path is byte-identical to life before this module."""
        losses = _train_losses("sim", SCHEDULES[label], "float64")
        assert _hex(losses) == GOLDEN[label]["losses"]


class TestReducedPrecisionParity:
    @pytest.mark.concurrency(timeout=300)
    @pytest.mark.parametrize("runtime", ["sim", "threaded", "process"])
    @pytest.mark.parametrize("label", sorted(SCHEDULES))
    def test_float32_tracks_float64(self, label, runtime):
        policy = resolve_precision("float32")
        ref = _train_losses("sim", SCHEDULES[label], "float64")
        got = _train_losses(runtime, SCHEDULES[label], "float32")
        assert got.shape == ref.shape
        np.testing.assert_allclose(
            got, ref, rtol=policy.loss_rtol, atol=policy.loss_atol,
            err_msg=f"float32 {runtime}/{label} drifted past tolerance",
        )

    @pytest.mark.parametrize("label", sorted(SCHEDULES))
    def test_bf16_tracks_float64(self, label):
        policy = resolve_precision("bf16")
        ref = _train_losses("sim", SCHEDULES[label], "float64")
        got = _train_losses("sim", SCHEDULES[label], "bf16")
        np.testing.assert_allclose(
            got, ref, rtol=policy.loss_rtol, atol=policy.loss_atol,
            err_msg=f"bf16 sim/{label} drifted past tolerance",
        )

    @pytest.mark.concurrency
    def test_float32_lockstep_is_bit_exact_across_runtimes(self):
        """Reduced precision keeps the *lockstep* contract: threaded
        float32 equals sim float32 to the bit (same kernels, same
        order), even though both differ from float64 by rounding."""
        sim = _train_losses("sim", SCHEDULES["pb"], "float32")
        thr = _train_losses("threaded", SCHEDULES["pb"], "float32")
        assert _hex(sim) == _hex(thr)

    def test_bf16_weights_stay_on_grid(self):
        X, Y = _stream()
        model = FACTORY()
        ex = PipelineExecutor(
            model, lr=LR, momentum=MOMENTUM, precision="bf16", mode="pb"
        )
        ex.train(X, Y)
        for p in model.parameters():
            assert p.data.dtype == np.float32
            re = simulate_bf16(p.data)
            assert re.tobytes() == p.data.tobytes(), (
                "a trained weight left the bf16 grid"
            )


# -- rejection: serving-only modes and grid mismatches -----------------------


class TestRejection:
    def test_int8_cannot_drive_training_engine(self):
        with pytest.raises(ValueError, match="serving-only"):
            PipelineExecutor(FACTORY(), lr=LR, precision="int8")

    def test_int8_cannot_drive_optimizer(self):
        rng = np.random.default_rng(0)
        p = Parameter(rng.normal(size=(3,)))
        with pytest.raises(ValueError, match="serving-only"):
            SGDM([p], lr=0.1, precision="int8")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            resolve_precision("float16")

    def test_policy_passthrough(self):
        policy = PrecisionPolicy("float32")
        assert resolve_precision(policy) is policy
        assert resolve_precision(None).is_reference

    def test_sgdm_rejects_cross_precision_state(self):
        _, opt64 = _toy_sgdm("float64")
        _, opt32 = _toy_sgdm("float32")
        state = opt64.state_dict()
        with pytest.raises(ValueError, match="float32"):
            opt32.load_state_dict(state)

    def test_sgdm_rejects_dtype_mismatched_velocity(self):
        _, opt = _toy_sgdm("float32")
        state = opt.state_dict()
        state["velocity"] = [
            v.astype(np.float32) for v in state["velocity"]
        ]
        with pytest.raises(ValueError, match="precision mode 'float32'"):
            opt.load_state_dict(state)

    def test_sgdm_rejects_scaler_presence_mismatch(self):
        _, opt_plain = _toy_sgdm("float32", None)
        _, opt_scaled = _toy_sgdm("float32", LossScaler())
        with pytest.raises(ValueError, match="loss-scaler presence"):
            opt_scaled.load_state_dict(opt_plain.state_dict())
        with pytest.raises(ValueError, match="loss-scaler presence"):
            opt_plain.load_state_dict(opt_scaled.state_dict())

    def test_session_rejects_conflicting_dtype(self):
        from repro.serve import InferenceSession

        with pytest.raises(ValueError, match="conflicts with"):
            InferenceSession(
                FACTORY(), micro_batch=4, sample_shape=(3, 8, 8),
                dtype=np.float64, precision="float32",
            )
        # redundant-but-consistent dtype is fine
        session = InferenceSession(
            FACTORY(), micro_batch=4, sample_shape=(3, 8, 8),
            dtype=np.float32, precision="float32",
        )
        assert session.dtype == np.float32

    def test_stage_rejects_dtype_mismatched_state(self):
        m64 = FACTORY()
        m32 = FACTORY()
        st64 = PipelineStage(1, m64.stage_defs[1], 5, lr=LR)
        ex32 = PipelineExecutor(m32, lr=LR, precision="float32")
        state = st64.state_dict()
        with pytest.raises(ValueError, match="precision mode 'float32'"):
            ex32.stages[1].validate_state(state)

    def test_engine_state_round_trips_within_precision(self):
        """Same-precision save/load still works under float32."""
        X, Y = _stream()
        ex = PipelineExecutor(FACTORY(), lr=LR, precision="float32")
        ex.train(X, Y)
        state = ex.state_dict()
        fresh = PipelineExecutor(FACTORY(), lr=LR, precision="float32")
        fresh.load_state_dict(state)
        for p, q in zip(ex.model.parameters(), fresh.model.parameters()):
            assert p.data.tobytes() == q.data.tobytes()


# -- serving precision -------------------------------------------------------


class TestServingPrecision:
    def _sessions(self, mode, runtime="sim"):
        from repro.serve import InferenceSession

        ref = InferenceSession(
            FACTORY(), runtime=runtime, micro_batch=4,
            sample_shape=(3, 8, 8), model_factory=FACTORY,
        )
        reduced = InferenceSession(
            FACTORY(), runtime=runtime, micro_batch=4,
            sample_shape=(3, 8, 8), model_factory=FACTORY, precision=mode,
        )
        return ref, reduced

    def test_session_dtype_follows_precision(self):
        _, s32 = self._sessions("float32")
        assert s32.dtype == np.float32
        assert s32.precision.mode == "float32"
        assert "precision=float32" in s32.describe()
        for p in s32.model.parameters():
            assert p.data.dtype == np.float32

    @pytest.mark.parametrize("mode,rtol", [("float32", 1e-5), ("int8", 0.2)])
    def test_reduced_logits_track_reference(self, mode, rtol):
        ref, reduced = self._sessions(mode)
        X = np.random.default_rng(5).normal(size=(8, 3, 8, 8))
        out_ref = np.asarray(ref.infer(X).outputs, dtype=np.float64)
        out_red = np.asarray(reduced.infer(X).outputs, dtype=np.float64)
        np.testing.assert_allclose(out_red, out_ref, rtol=rtol, atol=rtol)

    @pytest.mark.concurrency(timeout=300)
    def test_process_backend_bit_exact_at_float32(self):
        """The serving parity contract survives precision: the process
        backend's float32 outputs equal ``forward_reference`` (also
        float32) bit-for-bit — rings carry float32 slots throughout."""
        _, s32 = self._sessions("float32", runtime="process")
        X = np.random.default_rng(6).normal(size=(8, 3, 8, 8))
        got = s32.infer(X).outputs
        ref = s32.forward_reference(X)
        assert np.asarray(got).dtype == np.float32
        assert _hex(got) == _hex(ref)

    def test_from_checkpoint_casts_once_at_load(self, tmp_path):
        from repro.pipeline.checkpoint import (
            capture_checkpoint,
            save_checkpoint,
        )
        from repro.serve import InferenceSession

        X, Y = _stream()
        engine = PipelineExecutor(FACTORY(), lr=LR, momentum=MOMENTUM)
        engine.train(X, Y)
        path = str(tmp_path / "train.ckpt")
        save_checkpoint(path, capture_checkpoint(engine))
        session = InferenceSession.from_checkpoint(
            path, FACTORY, runtime="sim", micro_batch=4,
            sample_shape=(3, 8, 8), precision="int8",
        )
        assert session.precision.mode == "int8"
        for p in session.model.parameters():
            # int8 grid: dequantized float32 storage
            assert p.data.dtype == np.float32
        ref = InferenceSession.from_checkpoint(
            path, FACTORY, runtime="sim", micro_batch=4,
            sample_shape=(3, 8, 8),
        )
        Xq = np.random.default_rng(7).normal(size=(6, 3, 8, 8))
        out_q = np.asarray(session.infer(Xq).outputs, dtype=np.float64)
        out_f = np.asarray(ref.infer(Xq).outputs, dtype=np.float64)
        np.testing.assert_allclose(out_q, out_f, rtol=0.2, atol=0.2)

    @pytest.mark.concurrency(timeout=300)
    def test_stats_endpoint_reports_precision(self):
        import json
        import urllib.request

        from repro.serve import InferenceSession, PipelineServer

        session = InferenceSession(
            FACTORY(), runtime="threaded", micro_batch=4,
            sample_shape=(3, 8, 8), precision="float32",
        )
        with PipelineServer(session) as server:
            host, port = server.serve_http()
            x = np.random.default_rng(8).normal(size=(3, 8, 8))
            body = json.dumps({"x": x.tolist()}).encode()
            req = urllib.request.Request(
                f"http://{host}:{port}/infer",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=10) as resp:
                payload = json.loads(resp.read())
            assert len(payload["logits"]) == 4
            with urllib.request.urlopen(
                f"http://{host}:{port}/stats", timeout=10
            ) as resp:
                stats = json.loads(resp.read())
        assert stats["precision"] == "float32"
        assert stats["completed"] >= 1


# -- control-plane stats (the batched lockstep protocol) ---------------------


@pytest.mark.concurrency(timeout=300)
class TestControlPlaneStats:
    def test_process_lockstep_reports_reduced_round_trips(self):
        X, Y = _stream()
        runner = ProcessPipelineRunner(
            FACTORY(), lr=LR, momentum=MOMENTUM, mode="pb",
            lockstep=True, model_factory=FACTORY,
        )
        stats = runner.train(X, Y)
        control = stats.runtime.control
        assert control is not None
        assert control["protocol"] == "batched-step"
        S = control["num_stages"]
        assert control["baseline_msgs_per_step"] == 2 * S
        # the tentpole claim: far fewer pipe messages than the old
        # 2 messages/worker/tick protocol (1 send + 1 ack)
        assert control["msgs_per_step"] < control["baseline_msgs_per_step"]
        assert control["msgs_per_step"] <= S + 1.0
        assert control["acks_received"] < control["time_steps"] * S
        assert control["ack_interval"] == runner.lockstep_ack_interval

    def test_free_mode_has_no_control_stats(self):
        X, Y = _stream(8)
        runner = ProcessPipelineRunner(
            FACTORY(), lr=LR, mode="pb", lockstep=False,
            model_factory=FACTORY,
        )
        stats = runner.train(X, Y)
        assert stats.runtime.control is None

    def test_ack_interval_validated(self):
        with pytest.raises(ValueError, match="lockstep_ack_interval"):
            ProcessPipelineRunner(
                FACTORY(), lr=LR, lockstep=True, lockstep_ack_interval=0,
                model_factory=FACTORY,
            )

    def test_ack_interval_one_still_bit_exact(self):
        """ack_interval=1 degenerates to per-tick round-trips and must
        still match the simulator hex-exactly."""
        X, Y = _stream(12)
        m_sim, m_proc = FACTORY(), FACTORY()
        sim = PipelineExecutor(
            m_sim, lr=LR, momentum=MOMENTUM, mode="pb"
        ).train(X, Y)
        proc = ProcessPipelineRunner(
            m_proc, lr=LR, momentum=MOMENTUM, mode="pb", lockstep=True,
            lockstep_ack_interval=1, model_factory=FACTORY,
        ).train(X, Y)
        assert _hex(sim.losses) == _hex(proc.losses)
