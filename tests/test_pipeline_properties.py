"""Hypothesis property tests for the pipeline executor.

Random stage graphs (conv chains with optional residual blocks of random
placement) are generated, validated, and pushed through both execution
modes; the fill-drain mode must equal sequential mini-batch SGDM for
*every* generated topology, and PB must satisfy the eq.-5 version law.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.arch import PreActConvUnit, StageDef, StageGraphModel
from repro.nn import Conv2d, GlobalAvgPool, Linear, ReLU, Sequential, group_norm_for
from repro.optim import SGDM
from repro.pipeline import PipelineExecutor, validate_stage_graph
from repro.tensor import Tensor, cross_entropy
from repro.utils.rng import new_rng

settings.register_profile("pipeline", deadline=None, max_examples=12)
settings.load_profile("pipeline")


@st.composite
def random_stage_graph(draw):
    """A random valid stage graph: stem conv + blocks (plain or residual)."""
    seed = draw(st.integers(0, 2**20))
    rng = new_rng(seed)
    n_blocks = draw(st.integers(1, 3))
    block_kinds = [draw(st.booleans()) for _ in range(n_blocks)]  # residual?
    width = draw(st.sampled_from([4, 6]))

    stages = [
        StageDef(
            "stem",
            module=Conv2d(3, width, 3, padding=1, bias=False, rng=rng),
        )
    ]
    for b, residual in enumerate(block_kinds):
        if residual:
            unit1 = PreActConvUnit(
                group_norm_for(width),
                Conv2d(width, width, 3, padding=1, bias=False, rng=rng),
            )
            stages.append(
                StageDef(f"b{b}_conv1", module=unit1, push_skip="input")
            )
            unit2 = PreActConvUnit(
                group_norm_for(width),
                Conv2d(width, width, 3, padding=1, bias=False, rng=rng),
            )
            stages.append(StageDef(f"b{b}_conv2", module=unit2))
            stages.append(StageDef(f"b{b}_sum", kind="sum"))
        else:
            stages.append(
                StageDef(
                    f"b{b}_conv",
                    module=Sequential(
                        Conv2d(width, width, 3, padding=1, bias=False, rng=rng),
                        group_norm_for(width),
                        ReLU(),
                    ),
                )
            )
    stages.append(StageDef("pool", module=GlobalAvgPool()))
    stages.append(StageDef("fc", module=Linear(width, 5, rng=rng)))
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name=f"rand{seed}")


def _clone(model: StageGraphModel) -> StageGraphModel:
    clone = StageGraphModel(model.stage_defs, name=model.name)
    return clone  # shares modules; callers rebuild instead


@given(random_stage_graph(), st.integers(0, 2**16))
def test_fill_drain_equals_batch_sgd_for_any_topology(model, data_seed):
    validate_stage_graph(model.stage_defs)
    rng = np.random.default_rng(data_seed)
    n, N = 8, 4
    X = rng.normal(size=(n, 3, 6, 6))
    Y = rng.integers(0, 5, size=n)

    # snapshot the initial weights, run the pipeline, then restore and run
    # the reference on the same module objects
    init = model.state_dict()
    ex = PipelineExecutor(
        model, lr=0.05, momentum=0.9, mode="fill_drain", update_size=N
    )
    ex.train(X, Y)
    pipeline_weights = [p.data.copy() for p in model.parameters()]

    model.load_state_dict(init)
    opt = SGDM(model.parameters(), lr=0.05, momentum=0.9)
    for b in range(n // N):
        loss = cross_entropy(
            model(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
        )
        opt.zero_grad()
        loss.backward()
        opt.step()
    for got, p in zip(pipeline_weights, model.parameters()):
        np.testing.assert_allclose(got, p.data, atol=1e-9)


@given(random_stage_graph())
def test_pb_version_law_for_any_topology(model):
    rng = np.random.default_rng(0)
    n = 10
    X = rng.normal(size=(n, 3, 6, 6))
    Y = rng.integers(0, 5, size=n)
    ex = PipelineExecutor(
        model, lr=0.01, momentum=0.9, mode="pb", record_versions=True
    )
    stats = ex.train(X, Y)
    S = model.num_stages
    assert stats.time_steps == n + 2 * S - 2
    for s, stage in enumerate(ex.stages):
        if stage.spec.kind != "compute":
            continue
        D = 2 * (S - 1 - s)
        for sid, v_fwd, v_bwd in stage.version_trace:
            assert v_fwd == max(0, sid - D)
            assert v_bwd == sid


@given(random_stage_graph())
def test_pb_drains_and_updates_every_stage(model):
    rng = np.random.default_rng(1)
    n = 6
    X = rng.normal(size=(n, 3, 6, 6))
    Y = rng.integers(0, 5, size=n)
    ex = PipelineExecutor(model, lr=0.01, mode="pb")
    ex.train(X, Y)
    assert all(st.in_flight == 0 for st in ex.stages)
    assert all(st.updates_applied == n for st in ex.stages)
