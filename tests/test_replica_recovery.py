"""Replica death and durable resume for the replicated runner.

A :class:`~repro.pipeline.runtime.ReplicatedPipelineRunner` must extend
both durability mechanisms of the process runtime across the replica
dimension:

* **in-flight recovery** (``max_restarts``): SIGKILL any one replica's
  stage worker mid-update and the whole replica group aborts, restores
  the master snapshot taken at the ``train()`` entry drain barrier,
  respawns every replica and replays — landing on **hex-identical**
  weights and losses to a crash-free run (which is itself bit-identical
  to one pipeline at ``R*U``);
* **on-disk resume** (:class:`DurableRun`): a replicated run whose
  whole process died resumes from the checkpoint file into freshly
  built engines/streams, bit-exact with the uninterrupted golden —
  checkpoint cadence aligns to *global* drain barriers because the
  replicated engine reports the global update size.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from functools import partial

import numpy as np
import pytest

from repro.data.loader import ResumableSampleStream
from repro.models.simple import small_cnn
from repro.pipeline import (
    DurableRun,
    PipelineExecutor,
    PipelineRuntimeError,
    ReplicatedPipelineRunner,
    model_fingerprint,
)

pytestmark = pytest.mark.concurrency

STALL = 60.0
FACTORY = partial(small_cnn, num_classes=4, widths=(4,), seed=3)
LR, MOMENTUM, WEIGHT_DECAY = 0.05, 0.9, 1e-4


def _stream(n: int, seed: int = 13):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _make_engine(max_restarts: int = 0, update_size: int = 2,
                 replicas: int = 2):
    return ReplicatedPipelineRunner(
        FACTORY(), lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        mode="fill_drain", update_size=update_size, replicas=replicas,
        model_factory=FACTORY, max_restarts=max_restarts,
        stall_timeout=STALL,
    )


def _sim_golden(X, Y, global_update: int = 4):
    model = FACTORY()
    stats = PipelineExecutor(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        mode="fill_drain", update_size=global_update,
    ).train(X, Y)
    return model_fingerprint(model), [float(l).hex() for l in stats.losses]


class _ReplicaWorkerKiller:
    """SIGKILLs one stage worker of one *replica* mid-drive.

    Waits until the replicated runner has globally completed a couple
    of samples (packets in flight in every replica), then kills the
    requested stage worker of the requested replica.  ``fired`` records
    whether a live process actually received the signal.
    """

    def __init__(self, runner, replica_index: int, stage_index: int = -1,
                 after_samples: int = 2):
        self.runner = runner
        self.replica_index = replica_index
        self.stage_index = stage_index
        self.after = after_samples
        self.fired = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()
        return self

    def join(self):
        self._thread.join(30.0)

    def _run(self):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            rep = self.runner.replica_runners[self.replica_index]
            procs = list(rep._procs)
            if (
                self.runner.samples_completed >= self.after
                and procs
                and procs[self.stage_index].pid is not None
                and procs[self.stage_index].is_alive()
            ):
                try:
                    os.kill(procs[self.stage_index].pid, signal.SIGKILL)
                    self.fired = True
                except ProcessLookupError:  # pragma: no cover - raced exit
                    pass
                return
            time.sleep(0.002)


class TestReplicaDeathRecovery:
    @pytest.mark.parametrize("replica_index", [0, 1])
    def test_sigkill_replica_worker_recovers_bit_exact(self, replica_index):
        """Killing either replica's last stage worker mid-update must
        recover the whole group to the crash-free trajectory."""
        X, Y = _stream(16)
        gold_weights, gold_losses = _sim_golden(X, Y)

        engine = _make_engine(max_restarts=2)
        killer = _ReplicaWorkerKiller(engine, replica_index).start()
        stats = engine.train(X, Y)
        killer.join()
        assert killer.fired, "killer never found a live replica worker"
        assert engine.restarts_used >= 1, (
            "a replica worker was SIGKILLed but no recovery was taken"
        )
        assert model_fingerprint(engine.model) == gold_weights, (
            f"replica {replica_index} death: recovered weights drifted"
        )
        assert [float(l).hex() for l in stats.losses] == gold_losses, (
            f"replica {replica_index} death: recovered losses drifted"
        )

    def test_without_recovery_raises_runtime_error(self):
        """max_restarts=0: a replica death is a loud PipelineRuntimeError
        (and tears down every replica), never a hang or silent skip."""
        X, Y = _stream(16)
        engine = _make_engine(max_restarts=0)
        killer = _ReplicaWorkerKiller(engine, replica_index=1).start()
        with pytest.raises(PipelineRuntimeError):
            engine.train(X, Y)
        killer.join()
        assert killer.fired
        # the group is fully torn down — no leaked worker processes
        for rep in engine.replica_runners:
            assert not rep._procs

    def test_recovery_restores_master_snapshot_before_replay(self):
        """After recovery, per-stage update counts match the crash-free
        run (no double-applied updates from the aborted attempt)."""
        X, Y = _stream(16)
        ref_engine = _make_engine()
        ref_stats = ref_engine.train(X, Y)

        engine = _make_engine(max_restarts=2)
        killer = _ReplicaWorkerKiller(engine, replica_index=1).start()
        stats = engine.train(X, Y)
        killer.join()
        assert killer.fired
        assert stats.updates_per_stage == ref_stats.updates_per_stage
        assert stats.samples == ref_stats.samples == 16


class TestReplicatedDurableRun:
    def _make_stream(self, n: int = 24):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 4, size=n)
        return ResumableSampleStream(
            X, Y, epochs=1, rng=np.random.default_rng(5)
        )

    def test_checkpoint_resume_parity(self, tmp_path):
        """Interrupt a replicated DurableRun after a snapshot, resume a
        freshly built engine+stream from disk: hex-identical tail losses
        and final weights vs the uninterrupted golden."""
        path = str(tmp_path / "replicated.ckpt")

        golden_engine = _make_engine()
        golden = DurableRun(
            golden_engine, self._make_stream(), checkpoint_every=8
        ).run()
        golden_fp = model_fingerprint(golden_engine.model)

        # "the job dies" after 16 of 24 samples (two checkpoints in)
        int_engine = _make_engine()
        DurableRun(
            int_engine, self._make_stream(), checkpoint_path=path,
            checkpoint_every=8,
        ).run(max_samples=16)

        resumed_engine = _make_engine()
        run = DurableRun.resume(path, resumed_engine, self._make_stream())
        resumed = run.run()
        assert resumed_engine.samples_completed == 24
        gold_tail = [float(l).hex() for l in golden.losses[16:]]
        res_losses = [float(l).hex() for l in resumed.losses]
        assert res_losses == gold_tail
        assert model_fingerprint(resumed_engine.model) == golden_fp

    def test_checkpoint_cadence_uses_global_update_size(self):
        """R=2 x U=2: DurableRun rounds the cadence up to multiples of
        the *global* update size 4, so snapshots only land on global
        drain barriers where all replicas agree."""
        engine = _make_engine()
        run = DurableRun(engine, self._make_stream(), checkpoint_every=5)
        assert engine.update_size == 4
        assert run.checkpoint_every == 8
