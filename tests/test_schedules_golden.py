"""Golden-value regression tests for the pipeline schedules.

Exact (bit-level) pins of per-sample losses and final-weight fingerprints
for every schedule on a tiny fixed-seed model and stream.  The ``pb`` and
``fill_drain`` goldens were generated with the *pre-refactor* per-sample
executor, so they prove the schedule-driven engine (and any future
vectorization work) is bit-identical to it; the ``gpipe`` and ``1f1b``
goldens pin the first schedule-engine implementation so later performance
PRs cannot silently change numerics.

Values are stored as ``float.hex()`` strings and compared exactly — any
drift, even one ulp, is a failure.  Regenerate deliberately (and say so in
the PR) with the ``_regenerate`` helper at the bottom of this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.pipeline.executor import PipelineExecutor

# -- fixed workload ----------------------------------------------------------

SEED = 2024
N_SAMPLES = 16
LR, MOMENTUM, WEIGHT_DECAY = 0.05, 0.9, 1e-4

#: schedule label -> executor kwargs
RUNS = {
    "pb": dict(mode="pb"),
    "fill_drain": dict(mode="fill_drain", update_size=4),
    "gpipe": dict(mode="gpipe", update_size=4, micro_batch_size=4),
    "1f1b": dict(mode="1f1b"),
}

GOLDEN = {
    # generated with the pre-refactor executor (commit 107cb0c) — proves
    # the unified engine is bit-identical for the pre-existing modes
    "pb": dict(
        losses=[
            "0x1.56c1d1901190ap+0",
            "0x1.5c57bfcf3e28ap+0",
            "0x1.4eb0cdd5d74ffp+0",
            "0x1.56865742ebb77p+0",
            "0x1.77d6283343e8cp+0",
            "0x1.86eb340f230e8p+0",
            "0x1.dd5e5b930ddcfp+0",
            "0x1.c4f1cddbd1f36p+0",
            "0x1.de0fc1eb1ea9fp+0",
            "0x1.fc88117eba314p+0",
            "0x1.c842ccaeef6c9p+0",
            "0x1.32f363b122c85p-1",
            "0x1.921e871b2913cp+0",
            "0x1.6b3a26ca6b45ap+0",
            "0x1.ff75efcadb914p-1",
            "0x1.d3958b1a1c172p-1",
        ],
        weight_sum="0x1.25ca676fbc44ap+3",
        weight_abs_sum="0x1.458369fc646f2p+6",
    ),
    "fill_drain": dict(
        losses=[
            "0x1.56c1d1901190ap+0",
            "0x1.5c57bfcf3e28ap+0",
            "0x1.4eb0cdd5d74ffp+0",
            "0x1.4e737b916178dp+0",
            "0x1.66eba41e148a4p+0",
            "0x1.51526f8b1db29p+0",
            "0x1.96982e8442688p+0",
            "0x1.6228429a95709p+0",
            "0x1.643be87e5c3cdp+0",
            "0x1.63ce4d55a0b95p+0",
            "0x1.5d4c7546b6f3cp+0",
            "0x1.37fd66c033efep+0",
            "0x1.4febe2b2ff125p+0",
            "0x1.4c4123722227cp+0",
            "0x1.5b2803af729b0p+0",
            "0x1.5d556ab750af2p+0",
        ],
        weight_sum="0x1.5629dd5645902p+3",
        weight_abs_sum="0x1.2d9d50596d662p+6",
    ),
    # pinned from the first schedule-engine implementation (this PR) —
    # micro-batched reductions differ from the per-sample path only in
    # float summation order, visible as last-ulp drift vs fill_drain
    "gpipe": dict(
        losses=[
            "0x1.56c1d1901190ap+0",
            "0x1.5c57bfcf3e28ap+0",
            "0x1.4eb0cdd5d74ffp+0",
            "0x1.4e737b916178dp+0",
            "0x1.66eba41e148a4p+0",
            "0x1.51526f8b1db29p+0",
            "0x1.96982e8442688p+0",
            "0x1.6228429a95709p+0",
            "0x1.643be87e5c3ccp+0",
            "0x1.63ce4d55a0b95p+0",
            "0x1.5d4c7546b6f3cp+0",
            "0x1.37fd66c033efcp+0",
            "0x1.4febe2b2ff125p+0",
            "0x1.4c4123722227cp+0",
            "0x1.5b2803af729b0p+0",
            "0x1.5d556ab750af1p+0",
        ],
        weight_sum="0x1.5629dd5645902p+3",
        weight_abs_sum="0x1.2d9d50596d662p+6",
    ),
    "1f1b": dict(
        losses=[
            "0x1.56c1d1901190ap+0",
            "0x1.5c57bfcf3e28ap+0",
            "0x1.4eb0cdd5d74ffp+0",
            "0x1.56865742ebb77p+0",
            "0x1.77d6283343e8cp+0",
            "0x1.86eb340f230e8p+0",
            "0x1.dd5e5b930ddcfp+0",
            "0x1.c4f1cddbd1f36p+0",
            "0x1.dde0431e5fd09p+0",
            "0x1.fb8bd14be3a6fp+0",
            "0x1.c568633638e7ep+0",
            "0x1.34b2bbe9a5259p-1",
            "0x1.91126e250c292p+0",
            "0x1.6bc491be2d50cp+0",
            "0x1.feeaf7ddbf23fp-1",
            "0x1.d1b412b87d420p-1",
        ],
        weight_sum="0x1.25c4e3ec1c3a2p+3",
        weight_abs_sum="0x1.45d1c64e57d41p+6",
    ),
}


def _run(label: str):
    rng = np.random.default_rng(99)
    X = rng.normal(size=(N_SAMPLES, 3, 8, 8))
    Y = rng.integers(0, 4, size=N_SAMPLES)
    model = small_cnn(num_classes=4, widths=(4, 8), seed=SEED)
    ex = PipelineExecutor(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        **RUNS[label],
    )
    stats = ex.train(X, Y)
    wsum = float(np.sum([float(p.data.sum()) for p in model.parameters()]))
    wabs = float(
        np.sum([float(np.abs(p.data).sum()) for p in model.parameters()])
    )
    return stats, wsum, wabs


@pytest.mark.parametrize("label", sorted(RUNS))
def test_schedule_bit_exact(label):
    stats, wsum, wabs = _run(label)
    golden = GOLDEN[label]
    got = [float(l).hex() for l in stats.losses]
    assert got == golden["losses"], f"{label}: per-sample losses drifted"
    assert wsum.hex() == golden["weight_sum"], f"{label}: weights drifted"
    assert wabs.hex() == golden["weight_abs_sum"], f"{label}: weights drifted"


def test_gpipe_micro_batch_one_is_fill_drain_bit_exact():
    """gpipe degenerates to fill_drain when packets hold one sample —
    including at the bit level (same ops in the same order)."""
    rng = np.random.default_rng(99)
    X = rng.normal(size=(N_SAMPLES, 3, 8, 8))
    Y = rng.integers(0, 4, size=N_SAMPLES)
    model = small_cnn(num_classes=4, widths=(4, 8), seed=SEED)
    ex = PipelineExecutor(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        mode="gpipe", update_size=4, micro_batch_size=1,
    )
    stats = ex.train(X, Y)
    golden = GOLDEN["fill_drain"]
    assert [float(l).hex() for l in stats.losses] == golden["losses"]
    wsum = float(np.sum([float(p.data.sum()) for p in model.parameters()]))
    assert wsum.hex() == golden["weight_sum"]


def test_goldens_differ_across_schedules():
    """The pins are meaningful: each schedule's trajectory is distinct
    (gpipe vs fill_drain only by micro-batched reduction order)."""
    fingerprints = [tuple(g["losses"]) for g in GOLDEN.values()]
    assert len(set(fingerprints)) == len(fingerprints)
    # pb and 1f1b share forward staleness, so they agree until updates
    # influenced by backward weights reach the early stages...
    assert GOLDEN["pb"]["losses"][:8] == GOLDEN["1f1b"]["losses"][:8]
    # ...then weight stashing changes the trajectory
    assert GOLDEN["pb"]["losses"][8:] != GOLDEN["1f1b"]["losses"][8:]


def _regenerate():  # pragma: no cover - developer tool
    """Print a fresh GOLDEN dict (use only for deliberate re-pins)."""
    for label in RUNS:
        stats, wsum, wabs = _run(label)
        print(f'    "{label}": dict(')
        print("        losses=[")
        for l in stats.losses:
            print(f'            "{float(l).hex()}",')
        print("        ],")
        print(f'        weight_sum="{wsum.hex()}",')
        print(f'        weight_abs_sum="{wabs.hex()}",')
        print("    ),")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
