"""Process-per-stage runtime: bit-exact parity and free-running semantics.

The :class:`~repro.pipeline.runtime.ProcessPipelineRunner` promises the
same contracts as the threaded runner, now across OS process boundaries
and the shared-memory transport:

* **lockstep** is hex-identical to :class:`PipelineExecutor` for every
  schedule — the full PR-2 parity matrix ({1, 2, 4} stages × micro
  widths {1, 4, tail}) plus a re-pin of the canonical schedule goldens,
  reusing the exact helpers of ``test_runtime_parity``;
* **free-running** keeps the eq.-5 staleness ceiling via the per-stage
  in-flight caps, keeps the synchronous schedules numerically identical
  to sequential SGDM, and reports measured per-stage activity collected
  from the worker processes;
* trained weights and optimizer state ship back to the parent at drain
  time (the master model is usable immediately after ``train()``), and
  worker failures surface as :class:`PipelineRuntimeError`, never hangs.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.optim import SGDM
from repro.pipeline import (
    PipelineExecutor,
    PipelineRuntimeError,
    ProcessPipelineRunner,
    make_pipeline_engine,
)
from repro.tensor import Tensor, cross_entropy

from test_runtime_parity import (
    MODELS,
    SCHEDULE_CONFIGS,
    _hex_losses,
    _stream,
    _weight_fingerprint,
)
from test_schedules_golden import (
    GOLDEN,
    LR,
    MOMENTUM,
    N_SAMPLES,
    RUNS,
    SEED,
    WEIGHT_DECAY,
)

pytestmark = pytest.mark.concurrency

#: Generous per-wait deadline; the SIGALRM conftest guard still bounds
#: total test time, so a deadlock fails loudly either way.
STALL = 60.0


def _run_both(depth: int, mode: str, kw: dict, n: int, **runner_kw):
    """Train twin models through the simulator and the lockstep process
    runner (mirror of ``test_runtime_parity._run_both``)."""
    X, Y = _stream(n)
    m_sim = MODELS[depth](seed=2024)
    m_proc = MODELS[depth](seed=2024)
    common = dict(lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
                  mode=mode, **kw)
    sim = PipelineExecutor(m_sim, **common).train(X, Y)
    runner = ProcessPipelineRunner(
        m_proc, lockstep=True, stall_timeout=STALL, **common, **runner_kw
    )
    proc = runner.train(X, Y)
    return sim, proc, m_sim, m_proc, runner


class TestLockstepBitExact:
    @pytest.mark.parametrize("depth", sorted(MODELS))
    @pytest.mark.parametrize("mode,kw", SCHEDULE_CONFIGS)
    def test_losses_weights_and_update_counts(self, depth, mode, kw):
        sim, proc, m_sim, m_proc, _ = _run_both(depth, mode, kw, n=16)
        assert _hex_losses(sim) == _hex_losses(proc), (
            f"{mode} x {depth} stages: per-sample losses drifted across "
            "process boundaries"
        )
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_proc)
        assert sim.updates_per_stage == proc.updates_per_stage
        assert sim.time_steps == proc.time_steps
        assert sim.forward_ops == proc.forward_ops
        assert sim.backward_ops == proc.backward_ops
        assert sim.forward_samples == proc.forward_samples

    @pytest.mark.parametrize("mode,kw", SCHEDULE_CONFIGS)
    def test_tail_remainder_micro_batch(self, mode, kw):
        """n=11 with update 4 (batches 4,4,3) and micro 4 (tail packets
        of 3): the remainder path is bit-exact through the rings too."""
        sim, proc, m_sim, m_proc, _ = _run_both(4, mode, kw, n=11)
        assert _hex_losses(sim) == _hex_losses(proc)
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_proc)
        assert sim.updates_per_stage == proc.updates_per_stage

    def test_optimizer_state_ships_back(self):
        """Per-stage velocity returns to the parent bit-exact, so a
        second run continues exactly where the first stopped."""
        X, Y = _stream(12)
        m_sim = MODELS[4](seed=2024)
        m_proc = MODELS[4](seed=2024)
        common = dict(lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
                      mode="pb")
        sim_engine = PipelineExecutor(m_sim, **common)
        sim_engine.train(X, Y)
        runner = ProcessPipelineRunner(
            m_proc, lockstep=True, stall_timeout=STALL, **common
        )
        runner.train(X, Y)
        for st_sim, st_proc in zip(sim_engine.stages, runner.stages):
            assert st_sim.updates_applied == st_proc.updates_applied
            for p_sim, p_proc in zip(st_sim.params, st_proc.params):
                assert np.array_equal(
                    st_sim.velocity(p_sim), st_proc.velocity(p_proc)
                )

    def test_consecutive_runs_stay_bit_exact(self):
        """Two train() calls == one longer sim stream split in two: the
        state round-trip through the workers is lossless."""
        X, Y = _stream(16)
        m_sim = MODELS[4](seed=9)
        m_proc = MODELS[4](seed=9)
        common = dict(lr=LR, momentum=MOMENTUM, mode="pb")
        sim = PipelineExecutor(m_sim, **common)
        sim.train(X[:8], Y[:8])
        sim.train(X[8:], Y[8:])
        runner = ProcessPipelineRunner(
            m_proc, lockstep=True, stall_timeout=STALL, **common
        )
        runner.train(X[:8], Y[:8])
        runner.train(X[8:], Y[8:])
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_proc)
        assert runner.samples_completed == 16

    def test_lr_schedule_applied_at_barrier(self):
        X, Y = _stream(12)
        sched = lambda done: 0.05 / (1 + 0.1 * done)  # noqa: E731
        m1 = small_cnn(num_classes=4, widths=(4, 8), seed=3)
        m2 = small_cnn(num_classes=4, widths=(4, 8), seed=3)
        sim = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="pb", lr_schedule=sched
        ).train(X, Y)
        proc = ProcessPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="pb", lr_schedule=sched,
            lockstep=True, stall_timeout=STALL,
        ).train(X, Y)
        assert _hex_losses(sim) == _hex_losses(proc)
        assert _weight_fingerprint(m1) == _weight_fingerprint(m2)


class TestGoldenRePin:
    """The canonical hex goldens hold for the process engine verbatim —
    pins generated by the pre-refactor single-threaded executor now
    reproduced by multi-process workers over shared memory."""

    @pytest.mark.parametrize("label", sorted(RUNS))
    def test_process_matches_golden(self, label):
        rng = np.random.default_rng(99)
        X = rng.normal(size=(N_SAMPLES, 3, 8, 8))
        Y = rng.integers(0, 4, size=N_SAMPLES)
        model = small_cnn(num_classes=4, widths=(4, 8), seed=SEED)
        runner = ProcessPipelineRunner(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            lockstep=True, stall_timeout=STALL, **RUNS[label],
        )
        stats = runner.train(X, Y)
        golden = GOLDEN[label]
        assert _hex_losses(stats) == golden["losses"], (
            f"{label}: process-engine losses drifted from the golden pins"
        )
        wsum, wabs = _weight_fingerprint(model)
        assert wsum == golden["weight_sum"]
        assert wabs == golden["weight_abs_sum"]


class TestFreeRunning:
    @pytest.mark.parametrize("mode", ["pb", "1f1b"])
    def test_eq5_staleness_ceiling(self, mode):
        """max(0, i - 2(S-1-s)) <= v_fwd(i) <= i at every compute stage:
        the in-flight caps survive the process transport."""
        n = 24
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ProcessPipelineRunner(
            m, lr=0.01, momentum=0.9, mode=mode, lockstep=False,
            record_versions=True, stall_timeout=STALL,
        )
        runner.train(X, Y)
        S = m.num_stages
        for s, stage in enumerate(runner.stages):
            if stage.spec.kind != "compute":
                continue
            D = 2 * (S - 1 - s)
            assert len(stage.version_trace) == n
            for sid, v_fwd, v_bwd in stage.version_trace:
                assert max(0, sid - D) <= v_fwd <= sid, (
                    f"stage {s}: sample {sid} saw version {v_fwd}, "
                    f"outside [{max(0, sid - D)}, {sid}]"
                )
                assert v_bwd == sid

    def test_version_trace_accumulates_across_runs(self):
        """Two train() calls yield both runs' trace entries — matching
        the sim/threaded engines — even though each run's workers start
        from a fresh (or forked) stage."""
        X, Y = _stream(12)
        m = small_cnn(seed=5)
        runner = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=True, record_versions=True,
            stall_timeout=STALL,
        )
        runner.train(X[:6], Y[:6])
        runner.train(X[6:], Y[6:])
        for stage in runner.stages:
            if stage.spec.kind == "compute":
                assert len(stage.version_trace) == 12
                assert [t[0] for t in stage.version_trace[:6]] == list(range(6))

    def test_free_gpipe_equals_sequential_sgdm(self):
        n, N, B = 16, 8, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        ProcessPipelineRunner(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4, mode="gpipe",
            update_size=N, micro_batch_size=B, lockstep=False,
            stall_timeout=STALL,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        for b in range(n // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        diff = max(
            float(np.abs(a.data - b.data).max())
            for a, b in zip(m1.parameters(), m2.parameters())
        )
        assert diff < 1e-8

    def test_free_fill_drain_tail_batch(self):
        n, N = 10, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=7), small_cnn(seed=7)
        ProcessPipelineRunner(
            m1, lr=0.05, momentum=0.9, mode="fill_drain", update_size=N,
            lockstep=False, stall_timeout=STALL,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9)
        for start in range(0, n, N):
            xb, yb = X[start : start + N], Y[start : start + N]
            loss = cross_entropy(m2(Tensor(xb)), yb)
            ref.zero_grad()
            loss.backward()
            ref.step()
        diff = max(
            float(np.abs(a.data - b.data).max())
            for a, b in zip(m1.parameters(), m2.parameters())
        )
        assert diff < 1e-10

    def test_free_gpipe_losses_bit_match_simulator(self):
        n, N, B = 16, 8, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        sim = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="gpipe", update_size=N,
            micro_batch_size=B,
        ).train(X, Y)
        free = ProcessPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="gpipe", update_size=N,
            micro_batch_size=B, lockstep=False, stall_timeout=STALL,
        ).train(X, Y)
        assert np.array_equal(sim.losses, free.losses)

    def test_op_counts_and_runtime_stats(self):
        n = 12
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=False, stall_timeout=STALL
        )
        stats = runner.train(X, Y)
        rt = stats.runtime
        assert rt is runner.last_runtime_stats
        assert rt.backend == "process"
        assert rt.mode == "free_running"
        assert len(rt.stages) == m.num_stages
        assert rt.wall_seconds > 0.0
        # every stage transformed every sample exactly once per pass,
        # measured inside the workers and shipped back at drain
        for st in rt.stages:
            assert st.forward_ops == n
            assert st.backward_ops == n
            assert st.busy_seconds > 0.0
        assert runner.completion_order == sorted(runner.completion_order)

    def test_losses_populated_from_worker(self):
        n = 8
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        stats = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=False, stall_timeout=STALL
        ).train(X, Y)
        assert stats.losses.shape == (n,)
        assert np.all(stats.losses > 0.0)  # CE losses are positive


class TestSpawnAndFactory:
    def test_fork_factory_path_is_bit_exact(self):
        """model_factory switches fork workers onto the StageBuildSpec
        reconstruction path (what spawn uses) — still hex-identical."""
        factory = partial(small_cnn, num_classes=4, widths=(4,), seed=11)
        X, Y = _stream(10)
        m1, m2 = factory(), factory()
        sim = PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        proc = ProcessPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="pb", lockstep=True,
            model_factory=factory, stall_timeout=STALL,
        ).train(X, Y)
        assert _hex_losses(sim) == _hex_losses(proc)
        assert _weight_fingerprint(m1) == _weight_fingerprint(m2)

    @pytest.mark.concurrency(timeout=300)
    def test_spawn_start_method_is_bit_exact(self):
        """Full spawn: workers are fresh interpreters that rebuild their
        stage from the picklable factory + shipped state."""
        factory = partial(small_cnn, num_classes=4, widths=(4,), seed=11)
        X, Y = _stream(8)
        m1, m2 = factory(), factory()
        sim = PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        proc = ProcessPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="pb", lockstep=True,
            model_factory=factory, start_method="spawn",
            stall_timeout=240.0,
        ).train(X, Y)
        assert _hex_losses(sim) == _hex_losses(proc)
        assert _weight_fingerprint(m1) == _weight_fingerprint(m2)

    def test_spawn_without_factory_rejected(self):
        with pytest.raises(ValueError, match="model_factory"):
            ProcessPipelineRunner(
                small_cnn(seed=0), lr=0.01, start_method="spawn"
            )


class TestFailureAndEdgeCases:
    def test_empty_stream(self):
        m = small_cnn(seed=1)
        stats = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=False, stall_timeout=STALL
        ).train(np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=np.int64))
        assert stats.samples == 0
        assert stats.time_steps == 0
        assert np.isnan(stats.mean_loss)

    def test_single_sample(self):
        X, Y = _stream(1)
        m1 = small_cnn(seed=1)
        m2 = small_cnn(seed=1)
        sim = PipelineExecutor(m1, lr=0.01, mode="pb").train(X, Y)
        proc = ProcessPipelineRunner(
            m2, lr=0.01, mode="pb", lockstep=True, stall_timeout=STALL
        ).train(X, Y)
        assert _hex_losses(sim) == _hex_losses(proc)

    @pytest.mark.parametrize("lockstep", [False, True])
    def test_worker_exception_propagates(self, lockstep):
        """An out-of-range label makes the loss worker raise; the parent
        gets a PipelineRuntimeError naming the stage, not a hang."""
        X, Y = _stream(8)
        Y = Y.copy()
        Y[3] = 10_000  # IndexError inside softmax_xent_grad_batch
        m = small_cnn(seed=2)
        runner = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=lockstep, stall_timeout=15.0
        )
        with pytest.raises(PipelineRuntimeError) as exc_info:
            runner.train(X, Y)
        assert exc_info.value.stage_index == m.num_stages - 1
        # workers and shared memory are gone: a fresh run still works
        m_ok = small_cnn(seed=2)
        ok = ProcessPipelineRunner(
            m_ok, lr=0.01, mode="pb", lockstep=lockstep, stall_timeout=STALL
        ).train(*_stream(6))
        assert ok.samples == 6

    def test_rings_are_torn_down(self):
        """After train() the run's shared-memory segments are unlinked."""
        X, Y = _stream(6)
        m = small_cnn(seed=1)
        runner = ProcessPipelineRunner(
            m, lr=0.01, mode="pb", lockstep=False, stall_timeout=STALL
        )
        runner.train(X, Y)
        assert runner._rings == []
        assert runner._procs == []


class TestEngineFacade:
    def test_trainer_process_lockstep_matches_sim(self, tiny_dataset):
        from repro.train.pb_trainer import PipelinedTrainer

        hist = {}
        for runtime in ("sim", "process"):
            model = small_cnn(
                num_classes=tiny_dataset.num_classes, widths=(4, 8), seed=9
            )
            tr = PipelinedTrainer(
                model, tiny_dataset, mode="pb", seed=4,
                runtime=runtime, lockstep=True,
            )
            tr.train_samples(24)
            hist[runtime] = [float(p.data.sum()) for p in model.parameters()]
        assert hist["sim"] == hist["process"]

    def test_make_pipeline_engine_builds_process_runner(self):
        engine = make_pipeline_engine(
            "process", small_cnn(seed=0), lr=0.1, lockstep=True
        )
        assert isinstance(engine, ProcessPipelineRunner)
        assert engine.lockstep

    def test_make_pipeline_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="process"):
            make_pipeline_engine("distributed", small_cnn(seed=0), lr=0.1)
