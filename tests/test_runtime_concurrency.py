"""Concurrency stress tests for the threaded pipeline runtime.

Three failure families a multi-worker pipeline can hide:

* **interleaving bugs** — races that only appear under unlucky thread
  timing.  Seeded jitter injected into every worker loop randomizes the
  OS interleaving; lockstep results must be bit-identical to the
  simulator under *any* interleaving, and free-running runs must keep
  their ordering invariants (stage-0 backward completions arrive in
  injection order — the pipeline is FIFO end to end).
* **liveness bugs** — deadlocks on the boundary cases: the empty
  stream, a single sample, fewer samples than the in-flight caps.  Each
  case must terminate (the ``concurrency`` marker adds a hard SIGALRM
  ceiling so a regression fails loudly instead of hanging tier-1).
* **shutdown bugs** — a worker that dies must propagate its error to
  the caller and take the whole runtime down with it; a stalled worker
  must trip the coordinator's stall timeout; no pipeline thread may
  outlive ``train()``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.pipeline import (
    ConcurrentPipelineRunner,
    PipelineExecutor,
    PipelineRuntimeError,
)

pytestmark = pytest.mark.concurrency

SCHEDULES = [
    ("pb", {}),
    ("1f1b", {}),
    ("fill_drain", dict(update_size=4)),
    ("gpipe", dict(update_size=4, micro_batch_size=4)),
]


def _stream(n: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _pipeline_threads() -> list[str]:
    return [
        t.name for t in threading.enumerate()
        if t.name.startswith("pipeline-stage-")
    ]


class TestJitteredInterleavings:
    """Randomized scheduler-interleaving: jitter perturbs when each
    worker runs, never what it computes."""

    @pytest.mark.parametrize("jitter_seed", [1, 2, 3])
    @pytest.mark.parametrize("mode,kw", SCHEDULES)
    def test_lockstep_bit_exact_under_jitter(self, mode, kw, jitter_seed):
        X, Y = _stream(12)
        m_sim = small_cnn(num_classes=4, widths=(4,), seed=11)
        m_thr = small_cnn(num_classes=4, widths=(4,), seed=11)
        sim = PipelineExecutor(
            m_sim, lr=0.05, momentum=0.9, mode=mode, **kw
        ).train(X, Y)
        thr = ConcurrentPipelineRunner(
            m_thr, lr=0.05, momentum=0.9, mode=mode, lockstep=True,
            jitter=0.002, jitter_seed=jitter_seed, **kw,
        ).train(X, Y)
        assert [float(a).hex() for a in sim.losses] == [
            float(b).hex() for b in thr.losses
        ]
        for a, b in zip(m_sim.parameters(), m_thr.parameters()):
            assert np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("jitter_seed", [1, 2, 3])
    @pytest.mark.parametrize("mode,kw", SCHEDULES)
    def test_free_running_invariants_under_jitter(self, mode, kw, jitter_seed):
        n = 12
        X, Y = _stream(n)
        m = small_cnn(num_classes=4, widths=(4,), seed=11)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, momentum=0.9, mode=mode, lockstep=False,
            jitter=0.002, jitter_seed=jitter_seed, **kw,
        )
        stats = runner.train(X, Y)
        # packet ordering: completions arrive in injection order (FIFO
        # through every queue), every sample's loss was recorded once
        assert runner.completion_order == sorted(runner.completion_order)
        assert stats.samples == n
        assert np.all(np.isfinite(stats.losses))
        # conservation: every stage saw every packet exactly once
        rt = stats.runtime
        packets = rt.stages[0].forward_ops
        for st in rt.stages:
            assert st.forward_ops == packets
            assert st.backward_ops == packets
        assert stats.forward_samples == n * m.num_stages
        # and nothing was left in flight
        assert all(s.in_flight == 0 for s in runner.stages)


class TestLiveness:
    @pytest.mark.parametrize("lockstep", [True, False])
    @pytest.mark.parametrize("mode,kw", SCHEDULES)
    def test_empty_stream_terminates(self, mode, kw, lockstep):
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, mode=mode, lockstep=lockstep, stall_timeout=30,
            **kw,
        )
        stats = runner.train(np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=int))
        assert stats.samples == 0
        assert stats.time_steps == 0
        assert stats.utilization == 0.0
        assert np.isnan(stats.mean_loss)
        assert not _pipeline_threads()

    @pytest.mark.parametrize("lockstep", [True, False])
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("mode,kw", SCHEDULES)
    def test_short_streams_terminate(self, mode, kw, n, lockstep):
        """Streams shorter than the pipeline depth / update size / micro
        batch width drain cleanly in both modes."""
        X, Y = _stream(n)
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, mode=mode, lockstep=lockstep, stall_timeout=30,
            **kw,
        )
        stats = runner.train(X, Y)
        assert stats.samples == n
        assert np.all(np.isfinite(stats.losses))
        assert all(s.in_flight == 0 for s in runner.stages)
        assert not _pipeline_threads()

    @pytest.mark.parametrize("lockstep", [True, False])
    def test_consecutive_trains_reuse_runner(self, lockstep):
        """Workers are per-run: a second train() gets fresh threads and
        continues the optimizer state, as with the simulator."""
        X, Y = _stream(8)
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.02, momentum=0.9, mode="pb", lockstep=lockstep
        )
        runner.train(X[:4], Y[:4])
        runner.train(X[4:], Y[4:])
        assert runner.samples_completed == 8
        assert all(s.updates_applied == 8 for s in runner.stages)
        assert not _pipeline_threads()


class TestShutdown:
    @pytest.mark.parametrize("lockstep", [True, False])
    def test_worker_exception_propagates(self, lockstep):
        """A raising stage kills the run with PipelineRuntimeError — the
        caller sees the original error, no thread hangs on a queue."""
        X, Y = _stream(8)
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, mode="pb", lockstep=lockstep, stall_timeout=30
        )
        stage = runner.stages[1]
        original = stage.forward
        calls = {"n": 0}

        def flaky_forward(pid, payload, train=True):
            calls["n"] += 1
            if calls["n"] == 3:
                raise ValueError("injected stage failure")
            return original(pid, payload, train)

        stage.forward = flaky_forward
        with pytest.raises(PipelineRuntimeError) as err:
            runner.train(X, Y)
        assert err.value.stage_index == 1
        assert isinstance(err.value.cause, ValueError)
        assert not _pipeline_threads()

    @pytest.mark.parametrize("lockstep", [True, False])
    def test_exception_on_first_packet(self, lockstep):
        """Dying before any packet completes must not deadlock the
        coordinator's completion wait."""
        X, Y = _stream(4)
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, mode="pb", lockstep=lockstep, stall_timeout=30
        )

        def dead_on_arrival(pid, payload, train=True):
            raise RuntimeError("stage is broken from the start")

        runner.stages[0].forward = dead_on_arrival
        with pytest.raises(PipelineRuntimeError) as err:
            runner.train(X, Y)
        assert err.value.stage_index == 0
        assert not _pipeline_threads()

    def test_stalled_worker_trips_timeout(self):
        """A worker that blocks far beyond ``stall_timeout`` turns into
        a loud RuntimeError instead of a silent hang."""
        X, Y = _stream(4)
        m = small_cnn(num_classes=4, seed=7)
        runner = ConcurrentPipelineRunner(
            m, lr=0.05, mode="pb", lockstep=False, stall_timeout=0.5
        )
        original = runner.stages[1].forward

        def sleepy_forward(pid, payload, train=True):
            time.sleep(3.0)
            return original(pid, payload, train)

        runner.stages[1].forward = sleepy_forward
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="stalled"):
            runner.train(X, Y)
        # tripped by the stall timeout, not the test's SIGALRM ceiling
        assert time.monotonic() - t0 < 10.0
