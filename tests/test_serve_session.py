"""Inference sessions + forward-only pipeline: the serving parity contract.

The acceptance bar of ``repro.serve``: for any request set, serving
outputs are **bit-exact** with the offline batched forward on the same
weights, for all three runtimes.  Because BLAS kernels round
differently for different GEMM widths, the offline reference is the
batched forward over the *same micro-batch packets* the pipeline
executes (``InferenceSession.forward_reference``); these tests pin that
equality at hex level per backend, pin the backends against each
other, and cover the forward-only schedule's guards, the inference-only
checkpoint restore, and the engine-level ``infer()`` surface.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.pipeline import (
    ConcurrentPipelineRunner,
    InferenceSchedule,
    PipelineExecutor,
    ProcessPipelineRunner,
    make_schedule,
)
from repro.pipeline.checkpoint import (
    capture_checkpoint,
    model_fingerprint,
    save_checkpoint,
)
from repro.serve import InferenceSession

FACTORY = partial(small_cnn, num_classes=10, widths=(8, 16), seed=11)
SHAPE = (3, 8, 8)


def _requests(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n,) + SHAPE)


def _hex(a: np.ndarray) -> list[str]:
    return [v.hex() for v in np.asarray(a, dtype=np.float64).ravel()]


def _trained_model():
    model = FACTORY()
    X = _requests(24, seed=5)
    Y = np.random.default_rng(6).integers(0, 10, size=24)
    PipelineExecutor(model, lr=0.02, momentum=0.9, mode="pb").train(X, Y)
    return model


@pytest.mark.concurrency
class TestServingParity:
    """Bit-exactness across backends and against the offline reference."""

    @pytest.mark.parametrize("runtime", ["sim", "threaded", "process"])
    @pytest.mark.parametrize("micro", [1, 3, 8])
    def test_backend_matches_offline_reference(self, runtime, micro):
        model = _trained_model()
        session = InferenceSession(
            model, runtime=runtime, micro_batch=micro,
            sample_shape=SHAPE, model_factory=FACTORY,
        )
        X = _requests(19)  # deliberately not a multiple of micro
        ref = session.forward_reference(X, micro_batch=micro)
        stats = session.infer(X)
        assert stats.samples == 19
        assert stats.backend == runtime
        assert _hex(stats.outputs) == _hex(ref)
        # per-stage counters are real measurements on every backend
        # (the process stream only learns them at teardown — regression
        # pin against returning fabricated zeros)
        packets = -(-19 // micro)
        for c in stats.stage_counters[:-1]:
            assert c.forward_ops == packets
            assert c.forward_samples == 19

    def test_all_backends_agree_bitwise(self):
        model = _trained_model()
        X = _requests(13)
        outs = {}
        for runtime in ("sim", "threaded", "process"):
            session = InferenceSession(
                model, runtime=runtime, micro_batch=4,
                sample_shape=SHAPE, model_factory=FACTORY,
            )
            outs[runtime] = session.infer(X).outputs
        assert _hex(outs["sim"]) == _hex(outs["threaded"])
        assert _hex(outs["sim"]) == _hex(outs["process"])

    def test_serving_leaves_weights_untouched(self):
        model = _trained_model()
        before = model_fingerprint(model)
        session = InferenceSession(
            model, runtime="threaded", micro_batch=4, sample_shape=SHAPE
        )
        session.infer(_requests(16))
        assert model_fingerprint(model) == before

    def test_infer_is_repeatable(self):
        """No hidden state: the same batch twice is bit-identical."""
        model = _trained_model()
        session = InferenceSession(
            model, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        X = _requests(10)
        assert _hex(session.infer(X).outputs) == _hex(
            session.infer(X).outputs
        )

    def test_infer_restores_training_mode(self):
        model = _trained_model()
        model.train(True)
        session = InferenceSession(
            model, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        session.infer(_requests(4))
        assert model.training is True

    def test_failed_stream_open_restores_training_mode(self):
        """A stream constructor that dies mid-setup (here: a probe pass
        over a wrong sample shape) must not leak eval mode onto a model
        that is still being trained."""
        model = _trained_model()
        model.train(True)
        session = InferenceSession(
            model, runtime="process", micro_batch=4,
            sample_shape=(5, 5), model_factory=FACTORY,
        )
        with pytest.raises(Exception):
            session.open_stream()
        assert model.training is True


@pytest.mark.concurrency
class TestEngineInfer:
    """The engine-level infer() surface: all three runtimes drive the
    InferenceSchedule through the unchanged Schedule protocol."""

    def test_engines_match_bitwise(self):
        X = _requests(17)
        m1 = _trained_model()
        ex = PipelineExecutor(m1, lr=0.01)
        ref = ex.infer(X, micro_batch_size=4).outputs
        state = [p.data.copy() for p in m1.parameters()]

        m2 = FACTORY()
        for p, w in zip(m2.parameters(), state):
            p.data = w.copy()
        thr = ConcurrentPipelineRunner(m2, lr=0.01)
        assert _hex(thr.infer(X, micro_batch_size=4).outputs) == _hex(ref)

        m3 = FACTORY()
        for p, w in zip(m3.parameters(), state):
            p.data = w.copy()
        proc = ProcessPipelineRunner(m3, lr=0.01, model_factory=FACTORY)
        assert _hex(proc.infer(X, micro_batch_size=4).outputs) == _hex(ref)

    def test_train_between_infers(self):
        """Serving sees the engine's latest drained weights."""
        model = FACTORY()
        ex = PipelineExecutor(model, lr=0.02, momentum=0.9, mode="pb")
        X = _requests(12, seed=1)
        Y = np.random.default_rng(2).integers(0, 10, size=12)
        out_before = ex.infer(X, micro_batch_size=4).outputs
        ex.train(X, Y)
        out_after = ex.infer(X, micro_batch_size=4).outputs
        assert _hex(out_before) != _hex(out_after)
        session = InferenceSession.from_engine(
            ex, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        assert _hex(session.infer(X).outputs) == _hex(out_after)

    def test_empty_batch(self):
        ex = PipelineExecutor(FACTORY(), lr=0.01)
        stats = ex.infer(np.zeros((0,) + SHAPE), micro_batch_size=4)
        assert stats.samples == 0 and stats.time_steps == 0


class TestScheduleGuards:
    def test_train_refuses_forward_only_schedule(self):
        for engine_cls, kwargs in (
            (PipelineExecutor, {}),
            (ConcurrentPipelineRunner, {}),
            (ProcessPipelineRunner, {"model_factory": FACTORY}),
        ):
            engine = engine_cls(
                FACTORY(), lr=0.01, schedule=InferenceSchedule(4), **kwargs
            )
            with pytest.raises(ValueError, match="forward-only"):
                engine.train(_requests(4), np.zeros(4, dtype=np.int64))

    def test_infer_refuses_training_schedule(self):
        ex = PipelineExecutor(FACTORY(), lr=0.01)
        with pytest.raises(ValueError, match="forward-only"):
            ex.infer(_requests(4), schedule=make_schedule("pb"))

    def test_inference_schedule_has_no_backward(self):
        with pytest.raises(RuntimeError, match="no backward"):
            InferenceSchedule(2).update_after_backward(0)

    def test_make_schedule_builds_infer(self):
        sched = make_schedule("infer", micro_batch_size=3)
        assert sched.forward_only and sched.micro_batch == 3

    def test_drain_span_forward_only(self):
        # P packets over S stages: P + S - 1 steps (half the training
        # fill cost — there is no backward return trip)
        sched = InferenceSchedule(4)
        assert sched.drain_span(8, 5) == 2 + 5 - 1
        assert sched.drain_span(9, 5) == 3 + 5 - 1
        assert sched.drain_span(0, 5) == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError, match="micro_batch"):
            InferenceSchedule(0)


class TestCheckpointServing:
    """from_checkpoint: optimizer state stripped, schedule tag ignored."""

    def _checkpoint(self, tmp_path, mode="pb", **sched_kw) -> tuple:
        model = FACTORY()
        engine = PipelineExecutor(
            model, lr=0.02, momentum=0.9, mode=mode, **sched_kw
        )
        X = _requests(16, seed=5)
        Y = np.random.default_rng(6).integers(0, 10, size=16)
        engine.train(X, Y)
        path = str(tmp_path / "train.ckpt")
        save_checkpoint(path, capture_checkpoint(engine))
        return model, path

    def test_checkpoint_session_matches_live_session(self, tmp_path):
        model, path = self._checkpoint(tmp_path)
        live = InferenceSession(
            model, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        restored = InferenceSession.from_checkpoint(
            path, FACTORY, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        assert restored.fingerprint == live.fingerprint
        X = _requests(10)
        assert _hex(restored.infer(X).outputs) == _hex(live.infer(X).outputs)

    def test_schedule_tag_is_ignored_for_serving(self, tmp_path):
        """A gpipe-trained checkpoint serves fine — the schedule that
        produced the weights is irrelevant to forward-only serving."""
        model, path = self._checkpoint(
            tmp_path, mode="gpipe", update_size=8, micro_batch_size=4
        )
        restored = InferenceSession.from_checkpoint(
            path, FACTORY, runtime="sim", micro_batch=4, sample_shape=SHAPE
        )
        assert restored.fingerprint == model_fingerprint(model)

    def test_mismatched_model_refused_atomically(self, tmp_path):
        from repro.pipeline.checkpoint import (
            CheckpointError,
            restore_inference_weights,
        )

        _, path = self._checkpoint(tmp_path)
        other = small_cnn(num_classes=10, widths=(4, 4), seed=11)
        before = model_fingerprint(other)
        with pytest.raises(CheckpointError, match="shape"):
            restore_inference_weights(path, other)
        assert model_fingerprint(other) == before  # untouched

    def test_payload_without_engine_state_refused(self):
        from repro.pipeline.checkpoint import (
            CheckpointError,
            restore_inference_weights,
        )

        with pytest.raises(CheckpointError, match="engine"):
            restore_inference_weights({"metadata": {}}, FACTORY())
