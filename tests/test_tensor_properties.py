"""Hypothesis property tests for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, check_gradients, col2im, conv2d, im2col
from repro.tensor.tensor import _unbroadcast

settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


def arrays(draw, shape, scale=1.0):
    n = int(np.prod(shape))
    vals = draw(
        st.lists(
            st.floats(-2.0, 2.0, allow_nan=False, width=32),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(vals, dtype=np.float64).reshape(shape) * scale


@st.composite
def broadcastable_pair(draw):
    base = draw(
        st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)
    )
    # second shape: drop leading dims and/or squash some dims to 1
    start = draw(st.integers(0, len(base) - 1))
    other = tuple(
        1 if draw(st.booleans()) else d for d in base[start:]
    ) or (1,)
    return base, other


class TestBroadcastProperties:
    @given(broadcastable_pair(), st.randoms(use_true_random=False))
    def test_add_gradcheck_random_broadcast(self, shapes, pyrandom):
        sa, sb = shapes
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        a = Tensor(rng.normal(size=sa), requires_grad=True)
        b = Tensor(rng.normal(size=sb), requires_grad=True)
        check_gradients(lambda a, b: ((a + b) * (a * b)).sum(), [a, b])

    @given(broadcastable_pair(), st.randoms(use_true_random=False))
    def test_unbroadcast_is_adjoint_of_broadcast(self, shapes, pyrandom):
        """<broadcast(x), g> == <x, unbroadcast(g)> for all shapes."""
        sa, sb = shapes
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        x = rng.normal(size=sb)
        out_shape = np.broadcast_shapes(sa, sb)
        g = rng.normal(size=out_shape)
        lhs = float((np.broadcast_to(x, out_shape) * g).sum())
        rhs = float((x * _unbroadcast(g, sb)).sum())
        assert abs(lhs - rhs) < 1e-9


class TestConvProperties:
    @given(
        st.integers(1, 2),  # batch
        st.integers(1, 3),  # in channels
        st.integers(1, 3),  # out channels
        st.sampled_from([(3, 1, 1), (3, 2, 1), (1, 1, 0), (2, 2, 0)]),
        st.randoms(use_true_random=False),
    )
    def test_conv_gradcheck_random_config(self, n, ci, co, kspec, pyrandom):
        k, stride, pad = kspec
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        size = 6
        x = Tensor(rng.normal(size=(n, ci, size, size)), requires_grad=True)
        w = Tensor(rng.normal(size=(co, ci, k, k)) * 0.3, requires_grad=True)
        check_gradients(
            lambda x, w: (conv2d(x, w, stride=stride, padding=pad) ** 2).sum(),
            [x, w],
        )

    @given(
        st.integers(1, 2),
        st.integers(1, 3),
        st.sampled_from([(1, 1), (3, 1), (3, 2), (2, 2)]),
        st.randoms(use_true_random=False),
    )
    def test_im2col_col2im_adjoint_property(self, n, c, kspec, pyrandom):
        k, stride = kspec
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        h = w = k + 2 * stride  # always valid
        x = rng.normal(size=(n, c, h, w))
        cols = im2col(x, k, k, stride)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, k, k, stride)).sum())
        assert abs(lhs - rhs) < 1e-9


class TestEngineProperties:
    @given(
        st.lists(st.floats(-3.0, 3.0, allow_nan=False), min_size=2, max_size=8),
    )
    def test_sum_of_parts_equals_whole_gradient(self, vals):
        """d/dx [f(x) + g(x)] == d/dx f + d/dx g (linearity of backward)."""
        x1 = Tensor(np.asarray(vals), requires_grad=True)
        ((x1 * 2.0).sum() + (x1 * x1).sum()).backward()
        combined = x1.grad.copy()

        x2 = Tensor(np.asarray(vals), requires_grad=True)
        (x2 * 2.0).sum().backward()
        (x2 * x2).sum().backward()
        np.testing.assert_allclose(combined, x2.grad, atol=1e-12)

    @given(
        st.lists(
            st.floats(0.1, 3.0, allow_nan=False), min_size=2, max_size=8
        )
    )
    def test_log_exp_roundtrip_gradient_is_one(self, vals):
        x = Tensor(np.asarray(vals), requires_grad=True)
        x.log().exp().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(len(vals)), atol=1e-8)
