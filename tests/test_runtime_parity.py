"""Bit-exact parity: lockstep threaded runtime vs the simulator.

The lockstep :class:`~repro.pipeline.runtime.ConcurrentPipelineRunner`
promises to compute *exactly* what :class:`PipelineExecutor` computes —
same per-sample losses (to the bit), same final weights, same per-stage
update counts — for every schedule.  That contract is what makes the
concurrent runtime testable at all: any divergence is a concurrency bug
(lost packet, reordered update, torn weight read), never float noise.

Coverage: all four schedules × pipeline depths {1, 2, 4} stages ×
micro-batch widths {1, 4, tail-remainder}, plus a re-pin of the
canonical goldens from ``test_schedules_golden`` through the threaded
engine (same hex-string comparison helpers, same workload).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.arch import StageDef, StageGraphModel
from repro.models.simple import small_cnn
from repro.nn import Flatten, Linear, Sequential
from repro.pipeline import ConcurrentPipelineRunner, PipelineExecutor
from repro.utils.rng import new_rng

from test_schedules_golden import (
    GOLDEN,
    LR,
    MOMENTUM,
    N_SAMPLES,
    RUNS,
    SEED,
    WEIGHT_DECAY,
)

pytestmark = pytest.mark.concurrency


# -- model zoo: pipelines of 1, 2 and 4 stages -------------------------------


def _loss_only(seed: int = 0) -> StageGraphModel:
    """1 stage: the degenerate pipeline (loss only, no parameters)."""
    return StageGraphModel([StageDef("loss", kind="loss")], name="loss_only")


def _two_stage(seed: int = 0) -> StageGraphModel:
    """2 stages: one linear head + loss."""
    return StageGraphModel(
        [
            StageDef(
                "head",
                module=Sequential(
                    Flatten(), Linear(3 * 8 * 8, 4, rng=new_rng(seed))
                ),
            ),
            StageDef("loss", kind="loss"),
        ],
        name="two_stage",
    )


def _four_stage(seed: int = 0) -> StageGraphModel:
    """4 stages: conv, pool, fc, loss (``small_cnn`` with one width)."""
    return small_cnn(num_classes=4, widths=(4,), seed=seed)


MODELS = {1: _loss_only, 2: _two_stage, 4: _four_stage}

#: (schedule mode, executor kwargs) — micro-batch widths 1 and 4 for the
#: micro-batched schedule, plus per-sample widths for the others.
SCHEDULE_CONFIGS = [
    ("pb", {}),
    ("1f1b", {}),
    ("fill_drain", dict(update_size=4)),
    ("gpipe", dict(update_size=4, micro_batch_size=1)),
    ("gpipe", dict(update_size=4, micro_batch_size=4)),
]


def _hex_losses(stats) -> list[str]:
    return [float(l).hex() for l in stats.losses]


def _weight_fingerprint(model) -> tuple[str, str]:
    wsum = float(np.sum([float(p.data.sum()) for p in model.parameters()]))
    wabs = float(
        np.sum([float(np.abs(p.data).sum()) for p in model.parameters()])
    )
    return wsum.hex(), wabs.hex()


def _stream(n: int, seed: int = 99):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _run_both(depth: int, mode: str, kw: dict, n: int):
    """Train twin models through simulator and lockstep runner."""
    X, Y = _stream(n)
    m_sim = MODELS[depth](seed=2024)
    m_thr = MODELS[depth](seed=2024)
    common = dict(lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
                  mode=mode, **kw)
    sim = PipelineExecutor(m_sim, **common).train(X, Y)
    runner = ConcurrentPipelineRunner(m_thr, lockstep=True, **common)
    thr = runner.train(X, Y)
    return sim, thr, m_sim, m_thr


class TestLockstepBitExact:
    @pytest.mark.parametrize("depth", sorted(MODELS))
    @pytest.mark.parametrize("mode,kw", SCHEDULE_CONFIGS)
    def test_losses_weights_and_update_counts(self, depth, mode, kw):
        sim, thr, m_sim, m_thr = _run_both(depth, mode, kw, n=16)
        assert _hex_losses(sim) == _hex_losses(thr), (
            f"{mode} x {depth} stages: per-sample losses drifted"
        )
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_thr)
        assert sim.updates_per_stage == thr.updates_per_stage
        assert sim.time_steps == thr.time_steps
        assert sim.forward_ops == thr.forward_ops
        assert sim.backward_ops == thr.backward_ops
        assert sim.forward_samples == thr.forward_samples

    @pytest.mark.parametrize("mode,kw", SCHEDULE_CONFIGS)
    def test_tail_remainder_micro_batch(self, mode, kw):
        """n=11 with update 4 (batches 4,4,3) and micro 4 (tail packets
        of 3): the remainder path is bit-exact too."""
        sim, thr, m_sim, m_thr = _run_both(4, mode, kw, n=11)
        assert _hex_losses(sim) == _hex_losses(thr)
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_thr)
        assert sim.updates_per_stage == thr.updates_per_stage

    def test_lr_schedule_applied_at_barrier(self):
        """A sample-dependent LR schedule stays bit-exact (it is applied
        at the per-step barrier, exactly where the simulator applies
        it)."""
        X, Y = _stream(12)
        sched = lambda done: 0.05 / (1 + 0.1 * done)  # noqa: E731
        m1 = small_cnn(num_classes=4, widths=(4, 8), seed=3)
        m2 = small_cnn(num_classes=4, widths=(4, 8), seed=3)
        sim = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="pb", lr_schedule=sched
        ).train(X, Y)
        thr = ConcurrentPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="pb", lr_schedule=sched,
            lockstep=True,
        ).train(X, Y)
        assert _hex_losses(sim) == _hex_losses(thr)
        assert _weight_fingerprint(m1) == _weight_fingerprint(m2)


class TestGoldenRePin:
    """The canonical hex goldens of ``test_schedules_golden`` hold for
    the lockstep threaded engine verbatim — the strongest statement of
    the parity contract (pins generated by the *pre-refactor* executor
    now reproduced by a multi-threaded runtime)."""

    @pytest.mark.parametrize("label", sorted(RUNS))
    def test_threaded_matches_golden(self, label):
        rng = np.random.default_rng(99)
        X = rng.normal(size=(N_SAMPLES, 3, 8, 8))
        Y = rng.integers(0, 4, size=N_SAMPLES)
        model = small_cnn(num_classes=4, widths=(4, 8), seed=SEED)
        runner = ConcurrentPipelineRunner(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            lockstep=True, **RUNS[label],
        )
        stats = runner.train(X, Y)
        golden = GOLDEN[label]
        assert _hex_losses(stats) == golden["losses"], (
            f"{label}: threaded losses drifted from the golden pins"
        )
        wsum, wabs = _weight_fingerprint(model)
        assert wsum == golden["weight_sum"]
        assert wabs == golden["weight_abs_sum"]


class TestRuntimeStatsLockstep:
    def test_runtime_stats_attached_and_consistent(self):
        X, Y = _stream(10)
        m = small_cnn(num_classes=4, widths=(4,), seed=1)
        runner = ConcurrentPipelineRunner(m, lr=0.01, mode="pb", lockstep=True)
        stats = runner.train(X, Y)
        rt = stats.runtime
        assert rt is runner.last_runtime_stats
        assert rt.mode == "lockstep"
        assert rt.schedule == "pb"
        assert rt.num_stages == m.num_stages
        assert rt.wall_seconds > 0.0
        # per-stage op counts sum to the run totals
        assert sum(s.forward_ops for s in rt.stages) == stats.forward_ops
        assert sum(s.backward_ops for s in rt.stages) == stats.backward_ops
        # every stage transformed every sample exactly once in each pass
        for st in rt.stages:
            assert st.forward_ops == 10
            assert st.backward_ops == 10
        assert 0.0 <= rt.mean_busy_fraction <= 1.0

    def test_simulator_runs_have_no_runtime_stats(self):
        X, Y = _stream(6)
        m = small_cnn(num_classes=4, widths=(4,), seed=1)
        stats = PipelineExecutor(m, lr=0.01, mode="pb").train(X, Y)
        assert stats.runtime is None


class TestEngineFacade:
    def test_trainer_threaded_lockstep_matches_sim(self, tiny_dataset):
        """PipelinedTrainer(runtime="threaded", lockstep=True) trains the
        same trajectory as runtime="sim"."""
        from repro.train.pb_trainer import PipelinedTrainer

        hist = {}
        for runtime in ("sim", "threaded"):
            model = small_cnn(
                num_classes=tiny_dataset.num_classes, widths=(4, 8), seed=9
            )
            tr = PipelinedTrainer(
                model, tiny_dataset, mode="pb", seed=4,
                runtime=runtime, lockstep=True,
            )
            tr.train_samples(24)
            hist[runtime] = [
                float(p.data.sum()) for p in model.parameters()
            ]
        assert hist["sim"] == hist["threaded"]

    def test_make_pipeline_engine_rejects_unknown(self):
        from repro.pipeline import make_pipeline_engine

        with pytest.raises(ValueError):
            make_pipeline_engine("distributed", small_cnn(seed=0), lr=0.1)
