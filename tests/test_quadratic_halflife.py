"""Half-life optimization over condition-number windows (Figures 5-7, 12)."""

import numpy as np
import pytest

from repro.quadratic import (
    GDM,
    combined_method,
    condition_number_sweep,
    delay_sweep,
    half_life_from_rate,
    horizon_sweep,
    lwp_method,
    min_half_life_over_window,
    momentum_curve,
    sc_method,
)


class TestHalfLife:
    def test_half_life_values(self):
        assert half_life_from_rate(0.5) == pytest.approx(1.0)
        assert half_life_from_rate(0.25) == pytest.approx(0.5)
        assert half_life_from_rate(1.0) == float("inf")
        assert half_life_from_rate(1.5) == float("inf")
        assert half_life_from_rate(0.0) == 0.0

    def test_kappa_one_reduces_to_pointwise_min(self):
        """With kappa=1 the window is a single point: the best rate over
        the whole grid."""
        els = np.logspace(-6, 0, 40)
        ms = np.array([0.0, 0.5, 0.9])
        from repro.quadratic.roots import rate_grid

        rates = rate_grid(GDM, 0, els, ms)
        hl = min_half_life_over_window(GDM, 0, 1.0, els, ms, 6, rates=rates)
        assert hl == pytest.approx(half_life_from_rate(float(rates.min())))

    def test_harder_conditioning_is_slower(self):
        kappas = np.array([1e1, 1e2, 1e3])
        res = condition_number_sweep({"GDM": GDM}, kappas, delay=0,
                                     points_per_decade=5)
        vals = res["GDM"]
        assert vals[0] < vals[1] < vals[2]

    def test_window_wider_than_grid_raises(self):
        els = np.logspace(-1, 0, 5)
        ms = np.array([0.0])
        with pytest.raises(ValueError, match="window"):
            min_half_life_over_window(GDM, 0, 1e9, els, ms, 5)


class TestFigure5Shape:
    """Paper: 'All methods improve the convergence rate, LWPw+SC performs
    best' (Figure 5 caption)."""

    def test_method_ordering_at_high_kappa(self):
        methods = {
            "GDM": GDM,
            "SC_D": sc_method(),
            "LWP_D": lwp_method(),
            "combo": combined_method(),
        }
        res = condition_number_sweep(
            methods, np.array([1e4]), delay=1, points_per_decade=6
        )
        gdm = res["GDM"][0]
        assert res["SC_D"][0] < gdm
        assert res["LWP_D"][0] < gdm
        assert res["combo"][0] < res["SC_D"][0]
        assert res["combo"][0] < res["LWP_D"][0]

    def test_lwp_at_least_as_good_as_sc(self):
        """Paper: 'LWP_D slightly outperforms SC_D... indicates T=D is
        better than eq. 14 in this case'."""
        res = condition_number_sweep(
            {"SC_D": sc_method(), "LWP_D": lwp_method()},
            np.array([1e3]),
            delay=1,
            points_per_decade=8,
        )
        assert res["LWP_D"][0] <= res["SC_D"][0] * 1.05


class TestFigure6Shape:
    def test_delay_hurts_gdm_more_than_combo(self):
        delays = np.array([0, 4, 8])
        res = delay_sweep(
            {"GDM": GDM, "combo": combined_method()},
            delays,
            kappa=1e3,
            points_per_decade=4,
        )
        # GDM degrades with delay
        assert res["GDM"][2] > res["GDM"][0]
        # combo stays well below GDM at large delay
        assert res["combo"][2] < res["GDM"][2]


class TestFigure7Shape:
    def test_plain_delay_large_momentum_hurts(self):
        """Paper: 'without mitigation (T=0...) the optimal momentum is
        zero' — high momentum is far worse than none, and the optimum sits
        at small momentum."""
        momenta = np.concatenate([[0.0], 1.0 - 10.0 ** -np.linspace(0.5, 4, 8)])
        curve = momentum_curve(GDM, delay=5, kappa=1e3, momenta=momenta,
                               points_per_decade=4)
        assert curve[-1] > 2.0 * curve[0]  # m -> 1 is much worse than m = 0
        assert curve[0] == pytest.approx(curve.min(), rel=0.05)

    def test_combo_restores_momentum_benefit(self):
        """With mitigation the best momentum is large (>0)."""
        momenta = np.concatenate([[0.0], 1.0 - 10.0 ** -np.linspace(0.5, 4, 8)])
        curve = momentum_curve(
            combined_method(), delay=5, kappa=1e3, momenta=momenta,
            points_per_decade=4,
        )
        assert np.argmin(curve) > 0
        assert curve.min() < momentum_curve(
            GDM, delay=5, kappa=1e3, momenta=momenta, points_per_decade=4
        ).min()


class TestFigure12Shape:
    def test_optimal_scale_is_overcompensating(self):
        """Paper: 'horizon lengths of around T = 2D seem to give the best
        results' — the optimum scale is > 1 and finite."""
        scales = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
        vals = horizon_sweep(
            lambda alpha: lwp_method(scale=alpha),
            scales,
            delay=4,
            kappa=1e3,
            points_per_decade=4,
        )
        best = scales[int(np.argmin(vals))]
        assert best in (1.0, 2.0, 4.0)
        assert vals[np.where(scales == 2.0)[0][0]] < vals[0]  # beats T=0
