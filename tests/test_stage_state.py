"""``PipelineStage.state_dict`` round-trips, in and across processes.

The process runtime's correctness rests on stage state being fully
serializable: a worker rebuilds its stage from a spawn-safe recipe
(:class:`~repro.pipeline.stage.StageBuildSpec`), loads the parent's
``state_dict``, trains, and ships the state back.  These tests pin the
round-trip at hex level — a stage reconstructed *in a fresh process*
computes bit-identical forwards, backwards and updates — plus the
validation that refuses mismatched or mid-flight state.
"""

from __future__ import annotations

import multiprocessing as mp
from functools import partial

import numpy as np
import pytest

from repro.core.mitigation import MitigationConfig
from repro.models.simple import small_cnn
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.stage import PipelineStage, StageBuildSpec


def _trained_stage(seed: int = 3, steps: int = 4):
    """A compute stage with non-trivial optimizer state (post-updates)."""
    model = small_cnn(num_classes=4, widths=(4,), seed=seed)
    ex = PipelineExecutor(model, lr=0.05, momentum=0.9, weight_decay=1e-4,
                         mode="pb")
    rng = np.random.default_rng(0)
    X = rng.normal(size=(steps, 3, 8, 8))
    Y = rng.integers(0, 4, size=steps)
    ex.train(X, Y)
    return ex.stages[0]  # the conv stage


def _fwd_bwd_hex(stage: PipelineStage, x: np.ndarray) -> list[str]:
    """Hex fingerprint of one forward + backward + update at a stage."""
    out = stage.forward(0, [x])
    upstream = stage.backward(0, [np.ones_like(out[0])])
    stage.apply_update()
    arrays = [out[0], upstream[0]] + [p.data for p in stage.params]
    return [float(a.sum()).hex() + float(np.abs(a).sum()).hex()
            for a in arrays]


def _child_roundtrip(conn, build_spec, state, x):
    """Rebuild the stage from the recipe in a fresh process, run one
    fwd/bwd/update, return the hex fingerprints."""
    try:
        stage = build_spec.build()
        stage.load_state_dict(state)
        conn.send(("ok", _fwd_bwd_hex(stage, x)))
    except BaseException as exc:  # pragma: no cover - failure reporting
        conn.send(("err", repr(exc)))


class TestStateDictRoundTrip:
    def test_in_process_roundtrip_is_bit_exact(self):
        stage = _trained_stage()
        spec = StageBuildSpec(
            model_factory=partial(small_cnn, num_classes=4, widths=(4,),
                                  seed=3),
            index=0, lr=0.05, momentum=0.9, weight_decay=1e-4,
        )
        rebuilt = spec.build()
        rebuilt.load_state_dict(stage.state_dict())
        x = np.random.default_rng(7).normal(size=(1, 3, 8, 8))
        assert _fwd_bwd_hex(rebuilt, x) == _fwd_bwd_hex(stage, x)

    @pytest.mark.concurrency
    def test_fresh_process_roundtrip_is_bit_exact(self):
        """The satellite contract: reconstruct in a *fresh process*, run
        one fwd/bwd, hex-equal outputs vs. the in-process stage."""
        stage = _trained_stage()
        state = stage.state_dict()
        spec = StageBuildSpec(
            model_factory=partial(small_cnn, num_classes=4, widths=(4,),
                                  seed=3),
            index=0, lr=0.05, momentum=0.9, weight_decay=1e-4,
        )
        x = np.random.default_rng(7).normal(size=(1, 3, 8, 8))
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_child_roundtrip, args=(child_conn, spec, state, x),
            daemon=True,
        )
        proc.start()
        assert parent_conn.poll(60.0), "child never replied"
        tag, payload = parent_conn.recv()
        proc.join(10.0)
        assert tag == "ok", payload
        assert payload == _fwd_bwd_hex(stage, x)

    def test_state_dict_captures_velocity_and_counters(self):
        stage = _trained_stage(steps=5)
        state = stage.state_dict()
        assert state["updates_applied"] == 5
        assert len(state["params"]) == len(stage.params)
        for v, p in zip(state["velocity"], stage.params):
            assert v.shape == p.data.shape
            assert np.array_equal(v, stage.velocity(p))
        # copies, not references
        state["params"][0][...] = 0.0
        assert not np.allclose(stage.params[0].data, 0.0)

    def test_load_rebinds_shared_parameters(self):
        """The model sharing the Parameter objects sees loaded weights."""
        model = small_cnn(num_classes=4, widths=(4,), seed=1)
        ex = PipelineExecutor(model, lr=0.05, mode="pb")
        stage = ex.stages[0]
        state = stage.state_dict()
        for arr in state["params"]:
            arr += 1.0
        stage.load_state_dict(state)
        assert any(
            np.array_equal(p.data, arr)
            for p in model.parameters()
            for arr in state["params"]
        )


class TestStateDictValidation:
    def test_mid_flight_state_dict_refused(self):
        model = small_cnn(num_classes=4, widths=(4,), seed=1)
        stage = PipelineExecutor(model, lr=0.05, mode="pb").stages[0]
        stage.forward(0, [np.zeros((1, 3, 8, 8))])  # stash now non-empty
        with pytest.raises(RuntimeError, match="drain"):
            stage.state_dict()

    def test_wrong_array_count_raises(self):
        stage = _trained_stage()
        state = stage.state_dict()
        state["velocity"] = state["velocity"][:-1]
        with pytest.raises(ValueError, match="velocity"):
            stage.load_state_dict(state)

    def test_wrong_shape_raises_before_any_mutation(self):
        stage = _trained_stage()
        before = [p.data.copy() for p in stage.params]
        state = stage.state_dict()
        state["params"] = [np.zeros((2, 2)) for _ in state["params"]]
        with pytest.raises(ValueError, match="shape"):
            stage.load_state_dict(state)
        for p, b in zip(stage.params, before):
            assert np.array_equal(p.data, b), "partial load tore the stage"

    def test_build_spec_index_validated(self):
        spec = StageBuildSpec(
            model_factory=partial(small_cnn, num_classes=4, widths=(4,),
                                  seed=3),
            index=99, lr=0.05,
        )
        with pytest.raises(ValueError, match="out of range"):
            spec.build()

    def test_build_spec_applies_configuration(self):
        mit = MitigationConfig.sc()
        spec = StageBuildSpec(
            model_factory=partial(small_cnn, num_classes=4, widths=(4,),
                                  seed=3),
            index=0, lr=0.07, momentum=0.8, weight_decay=1e-3,
            mitigation=mit, always_stash=True, record_versions=True,
        )
        stage = spec.build()
        assert stage.lr == 0.07
        assert stage.momentum == 0.8
        assert stage.weight_decay == 1e-3
        assert stage.mitigation is mit
        assert stage.always_stash
        assert stage.record_versions
