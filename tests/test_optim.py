"""SGDM update math, LR schedules, and the eq.-9 scaling rules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter
from repro.optim import (
    ConstantSchedule,
    HE_CIFAR_REFERENCE,
    HyperParams,
    SGDM,
    StepSchedule,
    WarmupSchedule,
    momentum_half_life_samples,
    per_sample_contribution,
    scale_for_batch_size,
)
from repro.optim.scaling import lr_for_momentum

settings.register_profile("repro", deadline=None, max_examples=30)
settings.load_profile("repro")


class TestSGDM:
    def test_matches_manual_velocity_form(self, rng):
        p = Parameter(rng.normal(size=(4,)))
        w0 = p.data.copy()
        opt = SGDM([p], lr=0.1, momentum=0.9)
        g1 = rng.normal(size=4)
        g2 = rng.normal(size=4)
        p.grad = g1.copy()
        opt.step()
        p.grad = g2.copy()
        opt.step()
        v1 = g1
        v2 = 0.9 * v1 + g2
        np.testing.assert_allclose(p.data, w0 - 0.1 * v1 - 0.1 * v2, atol=1e-12)

    def test_weight_decay(self, rng):
        p = Parameter(np.ones(3))
        opt = SGDM([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, np.ones(3) - 0.1 * 0.5)

    def test_nesterov_differs(self, rng):
        p1 = Parameter(np.ones(3))
        p2 = Parameter(np.ones(3))
        o1 = SGDM([p1], lr=0.1, momentum=0.9)
        o2 = SGDM([p2], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            p1.grad = np.ones(3)
            p2.grad = np.ones(3)
            o1.step()
            o2.step()
        assert not np.allclose(p1.data, p2.data)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = SGDM([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            SGDM([], lr=0.1)
        with pytest.raises(ValueError):
            SGDM([Parameter(np.ones(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGDM([Parameter(np.ones(1))], lr=0.1, momentum=1.0)

    def test_state_dict_round_trip(self, rng):
        p = Parameter(rng.normal(size=(3,)))
        opt = SGDM([p], lr=0.1, momentum=0.9)
        p.grad = rng.normal(size=3)
        opt.step()
        state = opt.state_dict()
        p2 = Parameter(p.data.copy())
        opt2 = SGDM([p2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(opt2.velocity(p2), opt.velocity(p))


class TestScalingRules:
    def test_known_value_batch_1(self):
        lr, m = scale_for_batch_size(0.1, 0.9, 128, 1)
        assert m == pytest.approx(0.9 ** (1 / 128))
        assert lr == pytest.approx((1 - m) * 1 / ((1 - 0.9) * 128) * 0.1)

    def test_identity_at_reference(self):
        lr, m = scale_for_batch_size(0.1, 0.9, 128, 128)
        assert lr == pytest.approx(0.1) and m == pytest.approx(0.9)

    @given(
        st.floats(0.01, 1.0),
        st.floats(0.001, 0.999),
        st.integers(1, 512),
        st.integers(1, 512),
    )
    def test_half_life_invariant(self, lr_ref, m_ref, n_ref, n_new):
        """eq. 9 keeps the momentum half-life constant in samples."""
        lr, m = scale_for_batch_size(lr_ref, m_ref, n_ref, n_new)
        h_ref = momentum_half_life_samples(m_ref, n_ref)
        h_new = momentum_half_life_samples(m, n_new)
        assert h_new == pytest.approx(h_ref, rel=1e-6)

    @given(
        st.floats(0.01, 1.0),
        st.floats(0.0, 0.99),
        st.integers(1, 512),
        st.integers(1, 512),
    )
    def test_per_sample_contribution_invariant(self, lr_ref, m_ref, n_ref, n_new):
        """eq. 9 keeps each sample's total weight contribution constant."""
        lr, m = scale_for_batch_size(lr_ref, m_ref, n_ref, n_new)
        c_ref = per_sample_contribution(lr_ref, m_ref, n_ref)
        c_new = per_sample_contribution(lr, m, n_new)
        assert c_new == pytest.approx(c_ref, rel=1e-9)

    def test_hyperparams_scaled_to(self):
        hp = HE_CIFAR_REFERENCE.scaled_to(1)
        assert hp.batch_size == 1
        assert hp.momentum == pytest.approx(0.9 ** (1 / 128))
        assert hp.weight_decay == HE_CIFAR_REFERENCE.weight_decay

    def test_lr_for_momentum_matches_eq9_at_scaled_m(self):
        m1 = 0.9 ** (1 / 128)
        lr_eq9, _ = scale_for_batch_size(0.1, 0.9, 128, 1)
        lr_free = lr_for_momentum(0.1, 0.9, 128, m1, 1)
        assert lr_free == pytest.approx(lr_eq9)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_for_batch_size(0.1, 1.5, 128, 1)
        with pytest.raises(ValueError):
            scale_for_batch_size(0.1, 0.9, 0, 1)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s(0) == s(1000) == 0.3

    def test_step_schedule(self):
        s = StepSchedule(1.0, milestones=[10, 20], gamma=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_step_schedule_sorted(self):
        with pytest.raises(ValueError):
            StepSchedule(1.0, milestones=[20, 10])

    def test_warmup(self):
        s = WarmupSchedule(ConstantSchedule(1.0), warmup_steps=10, warmup_frac=0.0)
        assert s(0) == pytest.approx(0.0)
        assert s(5) == pytest.approx(0.5)
        assert s(10) == pytest.approx(1.0)
        assert s(100) == pytest.approx(1.0)

    def test_warmup_frac(self):
        s = WarmupSchedule(ConstantSchedule(2.0), warmup_steps=4, warmup_frac=0.5)
        assert s(0) == pytest.approx(1.0)
        assert s(4) == pytest.approx(2.0)
