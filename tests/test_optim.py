"""SGDM update math, LR schedules, and the eq.-9 scaling rules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter
from repro.optim import (
    ConstantSchedule,
    HE_CIFAR_REFERENCE,
    HyperParams,
    SGDM,
    StepSchedule,
    WarmupSchedule,
    momentum_half_life_samples,
    per_sample_contribution,
    scale_for_batch_size,
)
from repro.optim.scaling import lr_for_momentum

settings.register_profile("repro", deadline=None, max_examples=30)
settings.load_profile("repro")


class TestSGDM:
    def test_matches_manual_velocity_form(self, rng):
        p = Parameter(rng.normal(size=(4,)))
        w0 = p.data.copy()
        opt = SGDM([p], lr=0.1, momentum=0.9)
        g1 = rng.normal(size=4)
        g2 = rng.normal(size=4)
        p.grad = g1.copy()
        opt.step()
        p.grad = g2.copy()
        opt.step()
        v1 = g1
        v2 = 0.9 * v1 + g2
        np.testing.assert_allclose(p.data, w0 - 0.1 * v1 - 0.1 * v2, atol=1e-12)

    def test_weight_decay(self, rng):
        p = Parameter(np.ones(3))
        opt = SGDM([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, np.ones(3) - 0.1 * 0.5)

    def test_nesterov_differs(self, rng):
        p1 = Parameter(np.ones(3))
        p2 = Parameter(np.ones(3))
        o1 = SGDM([p1], lr=0.1, momentum=0.9)
        o2 = SGDM([p2], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            p1.grad = np.ones(3)
            p2.grad = np.ones(3)
            o1.step()
            o2.step()
        assert not np.allclose(p1.data, p2.data)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = SGDM([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            SGDM([], lr=0.1)
        with pytest.raises(ValueError):
            SGDM([Parameter(np.ones(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGDM([Parameter(np.ones(1))], lr=0.1, momentum=1.0)

    def test_state_dict_round_trip(self, rng):
        p = Parameter(rng.normal(size=(3,)))
        opt = SGDM([p], lr=0.1, momentum=0.9)
        p.grad = rng.normal(size=3)
        opt.step()
        state = opt.state_dict()
        p2 = Parameter(p.data.copy())
        opt2 = SGDM([p2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(opt2.velocity(p2), opt.velocity(p))

    def test_load_state_dict_validates_velocity_count(self, rng):
        p1, p2 = Parameter(np.ones(3)), Parameter(np.ones(3))
        opt = SGDM([p1, p2], lr=0.1, momentum=0.9)
        state = opt.state_dict()
        state["velocity"] = state["velocity"][:1]
        with pytest.raises(ValueError, match="velocity buffers"):
            opt.load_state_dict(state)

    def test_load_state_dict_validates_velocity_shapes(self, rng):
        """A mismatched velocity used to load silently and detonate at
        the next step; now it raises up front, naming the parameter."""
        p = Parameter(rng.normal(size=(3, 4)))
        opt = SGDM([p], lr=0.1, momentum=0.9)
        state = opt.state_dict()
        state["velocity"] = [np.zeros((7, 2))]
        with pytest.raises(ValueError, match=r"velocity\[0\]"):
            opt.load_state_dict(state)
        # the optimizer is untouched and still steps fine
        p.grad = np.ones((3, 4))
        opt.step()

    @pytest.mark.parametrize("wd", [0.0, 0.37])
    @pytest.mark.parametrize("nesterov", [False, True])
    def test_inplace_step_bit_exact_vs_naive(self, rng, wd, nesterov):
        """The in-place step (np.multiply/add/subtract with out=) keeps
        the textbook operation order, so trajectories are bit-identical
        to the naive out-of-place form."""
        shapes = [(4, 3), (8,), (2, 2, 2)]
        params = [Parameter(rng.normal(size=s)) for s in shapes]
        naive = [p.data.copy() for p in params]
        naive_v = [np.zeros_like(p.data) for p in params]
        opt = SGDM(params, lr=0.07, momentum=0.9, weight_decay=wd,
                   nesterov=nesterov)
        for _ in range(5):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            opt.step()
            for i, g in enumerate(grads):
                if wd:
                    g = g + wd * naive[i]
                naive_v[i] = 0.9 * naive_v[i] + g
                update = 0.9 * naive_v[i] + g if nesterov else naive_v[i]
                naive[i] = naive[i] - 0.07 * update
        for p, w, v in zip(params, naive, naive_v):
            assert np.array_equal(p.data, w), "weights drifted from naive"
            assert np.array_equal(opt.velocity(p), v)

    def test_step_updates_weights_in_place(self, rng):
        """p.data is mutated, not rebound — callers holding the buffer
        (e.g. zero-copy views) observe the update."""
        p = Parameter(rng.normal(size=(5,)))
        buf = p.data
        p.grad = rng.normal(size=5)
        SGDM([p], lr=0.1, momentum=0.9).step()
        assert p.data is buf

    def test_steady_state_step_allocates_no_new_buffers(self, rng):
        """After the first step warms the scratch cache, repeated steps
        reuse the same buffers (the satellite's allocation win)."""
        p = Parameter(rng.normal(size=(64, 64)))
        opt = SGDM([p], lr=0.1, momentum=0.9, weight_decay=1e-4)
        p.grad = rng.normal(size=(64, 64))
        opt.step()
        scratch_ids = {k: id(v) for k, v in opt._scratch.items()}
        for _ in range(3):
            p.grad = rng.normal(size=(64, 64))
            opt.step()
        assert {k: id(v) for k, v in opt._scratch.items()} == scratch_ids


class TestScalingRules:
    def test_known_value_batch_1(self):
        lr, m = scale_for_batch_size(0.1, 0.9, 128, 1)
        assert m == pytest.approx(0.9 ** (1 / 128))
        assert lr == pytest.approx((1 - m) * 1 / ((1 - 0.9) * 128) * 0.1)

    def test_identity_at_reference(self):
        lr, m = scale_for_batch_size(0.1, 0.9, 128, 128)
        assert lr == pytest.approx(0.1) and m == pytest.approx(0.9)

    @given(
        st.floats(0.01, 1.0),
        st.floats(0.001, 0.999),
        st.integers(1, 512),
        st.integers(1, 512),
    )
    def test_half_life_invariant(self, lr_ref, m_ref, n_ref, n_new):
        """eq. 9 keeps the momentum half-life constant in samples."""
        lr, m = scale_for_batch_size(lr_ref, m_ref, n_ref, n_new)
        h_ref = momentum_half_life_samples(m_ref, n_ref)
        h_new = momentum_half_life_samples(m, n_new)
        assert h_new == pytest.approx(h_ref, rel=1e-6)

    @given(
        st.floats(0.01, 1.0),
        st.floats(0.0, 0.99),
        st.integers(1, 512),
        st.integers(1, 512),
    )
    def test_per_sample_contribution_invariant(self, lr_ref, m_ref, n_ref, n_new):
        """eq. 9 keeps each sample's total weight contribution constant."""
        lr, m = scale_for_batch_size(lr_ref, m_ref, n_ref, n_new)
        c_ref = per_sample_contribution(lr_ref, m_ref, n_ref)
        c_new = per_sample_contribution(lr, m, n_new)
        assert c_new == pytest.approx(c_ref, rel=1e-9)

    def test_hyperparams_scaled_to(self):
        hp = HE_CIFAR_REFERENCE.scaled_to(1)
        assert hp.batch_size == 1
        assert hp.momentum == pytest.approx(0.9 ** (1 / 128))
        assert hp.weight_decay == HE_CIFAR_REFERENCE.weight_decay

    def test_lr_for_momentum_matches_eq9_at_scaled_m(self):
        m1 = 0.9 ** (1 / 128)
        lr_eq9, _ = scale_for_batch_size(0.1, 0.9, 128, 1)
        lr_free = lr_for_momentum(0.1, 0.9, 128, m1, 1)
        assert lr_free == pytest.approx(lr_eq9)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_for_batch_size(0.1, 1.5, 128, 1)
        with pytest.raises(ValueError):
            scale_for_batch_size(0.1, 0.9, 0, 1)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s(0) == s(1000) == 0.3

    def test_step_schedule(self):
        s = StepSchedule(1.0, milestones=[10, 20], gamma=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_step_schedule_sorted(self):
        with pytest.raises(ValueError):
            StepSchedule(1.0, milestones=[20, 10])

    def test_warmup(self):
        s = WarmupSchedule(ConstantSchedule(1.0), warmup_steps=10, warmup_frac=0.0)
        assert s(0) == pytest.approx(0.0)
        assert s(5) == pytest.approx(0.5)
        assert s(10) == pytest.approx(1.0)
        assert s(100) == pytest.approx(1.0)

    def test_warmup_frac(self):
        s = WarmupSchedule(ConstantSchedule(2.0), warmup_steps=4, warmup_frac=0.5)
        assert s(0) == pytest.approx(1.0)
        assert s(4) == pytest.approx(2.0)
