"""Cross-validation: simulated recurrences match the root analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compensation import spike_coefficients
from repro.quadratic import (
    ConvexQuadratic,
    characteristic_coefficients,
    dominant_root,
    empirical_rate,
    run_delayed_quadratic,
    simulate_recurrence,
)

settings.register_profile("repro", deadline=None, max_examples=20)
settings.load_profile("repro")


class TestRecurrenceVsRoots:
    @pytest.mark.parametrize(
        "el,m,D,a,b,T",
        [
            (0.01, 0.9, 0, 1.0, 0.0, 0.0),
            (0.01, 0.9, 3, 1.0, 0.0, 0.0),
            (0.01, 0.9, 3, None, None, 0.0),  # SC_D (resolved below)
            (0.01, 0.9, 3, 1.0, 0.0, 3.0),  # LWP_D
            (0.005, 0.95, 5, None, None, 5.0),  # combined
            (0.02, 0.5, 2, 1.0, 0.0, 4.0),  # overcompensated LWP
        ],
    )
    def test_empirical_rate_matches_dominant_root(self, el, m, D, a, b, T):
        if a is None:
            a, b = spike_coefficients(m, D)
        root = dominant_root(
            characteristic_coefficients(el, m, D, a=a, b=b, T=T)
        )
        trace = simulate_recurrence(el, m, D, a=a, b=b, T=T, steps=4000)
        emp = empirical_rate(trace, tail=800)
        assert emp == pytest.approx(root, abs=5e-3)

    @given(
        st.floats(1e-4, 0.05),
        st.floats(0.0, 0.95),
        st.integers(0, 6),
    )
    def test_gdm_random_configs(self, el, m, D):
        root = dominant_root(characteristic_coefficients(el, m, D))
        trace = simulate_recurrence(el, m, D, steps=3000)
        emp = empirical_rate(trace, tail=500)
        if root < 0.999:  # conclusive convergence only
            assert emp == pytest.approx(root, abs=1e-2)

    def test_unstable_config_diverges(self):
        """Large eta*lambda with delay and momentum must blow up, matching
        a dominant root > 1."""
        el, m, D = 1.5, 0.9, 4
        root = dominant_root(characteristic_coefficients(el, m, D))
        assert root > 1.0
        trace = simulate_recurrence(el, m, D, steps=300)
        assert empirical_rate(trace) == float("inf") or empirical_rate(trace) > 1.0


class TestConvexQuadratic:
    def test_log_spectrum(self):
        q = ConvexQuadratic.log_spectrum(kappa=100.0, n=16)
        assert q.condition_number == pytest.approx(100.0)
        assert q.eigenvalues.size == 16

    def test_loss_and_grad(self):
        q = ConvexQuadratic(np.array([1.0, 2.0]))
        w = np.array([2.0, 1.0])
        assert q.loss(w) == pytest.approx(0.5 * (4.0 + 2.0))
        np.testing.assert_allclose(q.grad(w), [2.0, 2.0])

    def test_stable_run_converges(self):
        q = ConvexQuadratic.log_spectrum(kappa=100.0, n=16)
        errs = run_delayed_quadratic(q, lr=0.1, momentum=0.9, delay=0,
                                     steps=2000)
        assert errs[-1] < 1e-3 * errs[0]

    def test_delay_slows_convergence(self):
        q = ConvexQuadratic.log_spectrum(kappa=100.0, n=16)
        base = run_delayed_quadratic(q, lr=0.05, momentum=0.9, delay=0, steps=500)
        delayed = run_delayed_quadratic(q, lr=0.05, momentum=0.9, delay=6, steps=500)
        assert delayed[-1] > base[-1]

    def test_mitigation_helps_delayed_run(self):
        """The Figure 5/6 story, empirically: combined mitigation beats
        plain delayed SGDM on an ill-conditioned quadratic."""
        q = ConvexQuadratic.log_spectrum(kappa=1000.0, n=24)
        m, D = 0.9, 6
        lr = 0.02
        plain = run_delayed_quadratic(q, lr=lr, momentum=m, delay=D, steps=1500)
        a, b = spike_coefficients(m, D)
        combo = run_delayed_quadratic(
            q, lr=lr, momentum=m, delay=D, a=a, b=b, T=float(D), steps=1500
        )
        assert combo[-1] < plain[-1]

    def test_velocity_and_weight_forms_agree_without_sc(self):
        q = ConvexQuadratic.log_spectrum(kappa=50.0, n=8)
        kw = dict(lr=0.03, momentum=0.9, delay=3, T=3.0, steps=400)
        ew = run_delayed_quadratic(q, form="w", **kw)
        ev = run_delayed_quadratic(q, form="v", **kw)
        np.testing.assert_allclose(ew, ev, rtol=1e-8)

    def test_divergence_is_flagged(self):
        q = ConvexQuadratic(np.array([1.0]))
        errs = run_delayed_quadratic(q, lr=3.0, momentum=0.9, delay=3, steps=200)
        assert not np.isfinite(errs[-1])

    def test_bad_form_raises(self):
        q = ConvexQuadratic(np.array([1.0]))
        with pytest.raises(ValueError):
            run_delayed_quadratic(q, lr=0.1, momentum=0.0, delay=0, form="x")
