"""Graph-mechanics tests: accumulation, no_grad, lazy weight reads,
multi-root backward."""

import numpy as np
import pytest

from repro.tensor import Tensor, matmul, no_grad, relu
from repro.tensor.tensor import backward_multi, grad_enabled


class TestGraphMechanics:
    def test_grad_accumulates_across_backward_calls(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0))

    def test_shared_node_accumulates_within_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = a * 2.0
        out = (b + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 4.0))

    def test_diamond_graph(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        left = a * 3.0
        right = relu(a)
        (left * right).sum().backward()
        expected = 3.0 * relu(Tensor(a.data)).data + 3.0 * a.data * (
            a.data > 0
        )
        np.testing.assert_allclose(a.grad, expected)

    def test_backward_requires_scalar_without_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_blocks_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            out = (a * 2.0).sum()
            assert not out.requires_grad
        assert grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert grad_enabled()

    def test_deep_chain_no_recursion_error(self, rng):
        a = Tensor(rng.normal(size=(2,)), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x * 1.0001
        x.sum().backward()
        assert a.grad is not None

    def test_detach_cuts_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_dtype_preserved_float64(self, rng):
        a = Tensor(rng.normal(size=(3,)).astype(np.float32))
        assert a.dtype == np.float32
        b = Tensor([1, 2, 3])
        assert b.dtype == np.float64


class TestLazyWeightReads:
    """The property pipelined backprop inconsistency relies on."""

    def test_matmul_input_grad_uses_current_weight_value(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = matmul(x, w).sum()
        w_new = rng.normal(size=(3, 4))
        w.data = w_new  # mutate between forward and backward
        out.backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 4)) @ w_new.T)

    def test_matmul_weight_grad_uses_forward_activations(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = matmul(x, w).sum()
        x_forward = x.data.copy()
        out.backward()
        np.testing.assert_allclose(w.grad, x_forward.T @ np.ones((2, 4)))

    def test_conv_input_grad_uses_current_weight_value(self, rng):
        from repro.tensor import conv2d

        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        out = conv2d(x, w, padding=1).sum()
        w.data = np.zeros_like(w.data)  # zero weights before backward
        out.backward()
        np.testing.assert_allclose(x.grad, np.zeros_like(x.data))

    def test_relu_mask_is_forward_captured(self, rng):
        x = Tensor(np.array([1.0, -1.0, 2.0]), requires_grad=True)
        out = relu(x).sum()
        x.data = np.array([-5.0, 5.0, 5.0])  # must not change the mask
        out.backward()
        np.testing.assert_allclose(x.grad, np.array([1.0, 0.0, 1.0]))


class TestBackwardMulti:
    def test_matches_combined_scalar(self, rng):
        def build(a_data):
            a = Tensor(a_data, requires_grad=True)
            shared = a * 2.0
            y1 = shared * 3.0
            y2 = relu(shared)
            return a, y1, y2

        g1 = rng.normal(size=(4,))
        g2 = rng.normal(size=(4,))
        a_data = rng.normal(size=(4,))

        a, y1, y2 = build(a_data)
        backward_multi([(y1, g1), (y2, g2)])
        multi_grad = a.grad.copy()

        a2, z1, z2 = build(a_data)
        total = (z1 * Tensor(g1)).sum() + (z2 * Tensor(g2)).sum()
        total.backward()
        np.testing.assert_allclose(multi_grad, a2.grad, atol=1e-12)

    def test_single_root_equals_backward(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = a * 4.0
        backward_multi([(y, np.ones(3))])
        np.testing.assert_allclose(a.grad, np.full(3, 4.0))

    def test_skips_non_grad_roots(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        backward_multi([(a, np.ones(3))])  # no error
        assert a.grad is None
