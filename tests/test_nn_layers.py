"""Layer-level tests: shapes, statistics, gradients, modes."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    GlobalAvgPool,
    GroupNorm,
    Linear,
    MaxPool2d,
    MSELoss,
    group_norm_for,
)
from repro.tensor import Tensor, check_gradients
from repro.utils.rng import new_rng


class TestLinearConv:
    def test_linear_shapes_and_grad(self, rng):
        layer = Linear(6, 4, rng=new_rng(0))
        x = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        out = layer(x)
        assert out.shape == (3, 4)
        check_gradients(
            lambda x: (layer(x) ** 2).sum(), [x]
        )

    def test_linear_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_layer_grad(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=new_rng(0))
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        check_gradients(lambda x: (layer(x) ** 2).sum(), [x])

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_init_reproducible(self):
        a = Linear(4, 4, rng=new_rng(42))
        b = Linear(4, 4, rng=new_rng(42))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestGroupNorm:
    def test_normalizes_per_group(self, rng):
        gn = GroupNorm(2, 8)
        x = Tensor(rng.normal(size=(3, 8, 4, 4)) * 5.0 + 2.0)
        out = gn(x).data
        grouped = out.reshape(3, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-6)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_batch_independence(self, rng):
        """GN output for a sample must not depend on the rest of the batch
        — the property that enables batch-size-one training."""
        gn = GroupNorm(2, 4)
        x = rng.normal(size=(4, 4, 3, 3))
        full = gn(Tensor(x)).data
        single = gn(Tensor(x[1:2])).data
        np.testing.assert_allclose(full[1:2], single, atol=1e-12)

    def test_gradcheck(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        labels = rng.normal(size=(2, 4, 3, 3))
        check_gradients(
            lambda x: ((gn(x) - Tensor(labels)) ** 2).sum(), [x],
            atol=1e-5, rtol=1e-3,
        )

    def test_affine_params_receive_grads(self, rng):
        gn = GroupNorm(2, 4)
        out = (gn(Tensor(rng.normal(size=(2, 4, 3, 3)))) ** 2).sum()
        out.backward()
        assert gn.weight.grad is not None and gn.bias.grad is not None

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 8)

    def test_channel_mismatch_raises(self, rng):
        gn = GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(rng.normal(size=(1, 6, 3, 3))))

    def test_group_norm_for_group_size(self):
        gn = group_norm_for(16, group_size=2)
        assert gn.num_groups == 8
        gn2 = group_norm_for(3, group_size=2)  # falls back to divisor
        assert gn2.num_channels == 3

    def test_no_affine(self, rng):
        gn = GroupNorm(1, 4, affine=False)
        assert len(gn.parameters()) == 0
        gn(Tensor(rng.normal(size=(1, 4, 2, 2))))


class TestBatchNorm:
    def test_train_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(8, 3, 4, 4)) * 3.0 + 1.0)
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(3, momentum=0.5)
        x = Tensor(rng.normal(size=(16, 3, 4, 4)) + 4.0)
        bn(x)
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(20):
            bn(Tensor(rng.normal(size=(16, 3, 4, 4)) * 2.0 + 1.0))
        bn.eval()
        x = rng.normal(size=(4, 3, 4, 4)) * 2.0 + 1.0
        out = bn(Tensor(x)).data
        ref = (x - bn.running_mean.reshape(1, 3, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, 3, 1, 1) + bn.eps
        )
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_gradcheck_train_mode(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        w = rng.normal(size=(4, 2, 3, 3))
        check_gradients(
            lambda x: (bn(x) * Tensor(w)).sum(), [x], atol=1e-5, rtol=1e-3
        )


class TestPoolingLayers:
    def test_max_pool_module(self, rng):
        out = MaxPool2d(2)(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_avg_pool_module(self, rng):
        out = AvgPool2d(3)(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 2, 2)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        out = GlobalAvgPool()(Tensor(x))
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = Dropout(0.5)
        d.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(d(Tensor(x)).data, x)

    def test_train_scales_surviving(self):
        d = Dropout(0.5, seed=0)
        x = np.ones((100, 100))
        out = d(Tensor(x)).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_reseed_reproduces_masks(self):
        d = Dropout(0.5, seed=3)
        x = Tensor(np.ones((8, 8)))
        m1 = d(x).data.copy()
        d.reseed()
        m2 = d(x).data.copy()
        np.testing.assert_array_equal(m1, m2)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_p_identity_in_train(self, rng):
        d = Dropout(0.0)
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(d(Tensor(x)).data, x)


class TestLosses:
    def test_cross_entropy_module(self, rng):
        loss = CrossEntropyLoss()
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = loss(logits, np.array([0, 1, 2, 0]))
        assert out.size == 1
        out.backward()
        assert logits.grad is not None

    def test_mse(self, rng):
        loss = MSELoss()
        a = Tensor(rng.normal(size=(5,)))
        b = Tensor(rng.normal(size=(5,)))
        expected = float(((a.data - b.data) ** 2).mean())
        assert float(loss(a, b).data) == pytest.approx(expected)

    def test_mse_sum(self, rng):
        a, b = Tensor(np.ones(4)), Tensor(np.zeros(4))
        assert float(MSELoss("sum")(a, b).data) == pytest.approx(4.0)
