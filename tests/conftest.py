"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest

#: Hard wall-clock ceiling for tests marked ``concurrency``.  The
#: threaded pipeline runtime has its own stall timeouts, but a bug in
#: those must not be able to hang tier-1: the alarm turns a deadlock
#: into a loud failure.  Override per test with
#: ``@pytest.mark.concurrency(timeout=<seconds>)``.
CONCURRENCY_TIMEOUT = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("concurrency")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.kwargs.get("timeout", CONCURRENCY_TIMEOUT))

    def _timed_out(signum, frame):  # pragma: no cover - only on deadlock
        raise TimeoutError(
            f"concurrency test exceeded the hard {seconds}s timeout — "
            "likely a deadlocked pipeline runtime"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """A very small, fairly easy synthetic dataset for training tests."""
    from repro.data import make_synthetic

    return make_synthetic(
        name="tiny",
        num_classes=4,
        image_size=8,
        train_size=192,
        val_size=96,
        noise=0.5,
        seed=7,
    )
