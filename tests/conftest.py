"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """A very small, fairly easy synthetic dataset for training tests."""
    from repro.data import make_synthetic

    return make_synthetic(
        name="tiny",
        num_classes=4,
        image_size=8,
        train_size=192,
        val_size=96,
        noise=0.5,
        seed=7,
    )
