"""Shared-memory ring transport: SPSC semantics and the zero-copy contract.

The process runtime's acceptance bar is that **no activation or gradient
is pickled on the steady-state hot path**: the producer side is one
``np.copyto`` into a preallocated slot, the consumer side hands out NumPy
views *into that same slot memory*.  These tests pin both halves by
buffer identity — the address a consumer reads from is the address the
ring preallocated, for every slot, across wrap-around — plus the SPSC
bookkeeping rules (FIFO release, capacity, stall errors) the runtime's
deadlock-freedom argument leans on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.transport import (
    ArraySpec,
    ShmRing,
    TransportError,
    TransportStall,
    build_pipeline_rings,
    payload_specs,
    probe_boundary_layouts,
    ring_slots_for,
)


@pytest.fixture
def ring():
    r = ShmRing.create(
        "test", [ArraySpec((4, 3), "float64"), ArraySpec((4,), "float64")],
        slots=3,
    )
    yield r
    r.close()
    r.unlink()


def _payload(seed: int, size: int = 4):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(size, 3)), rng.normal(size=(size,))]


class TestRingBasics:
    def test_roundtrip_values(self, ring):
        p = _payload(0)
        ring.send(7, 0, 4, p, timeout=1.0)
        pid, start, size, views = ring.recv(1.0)
        assert (pid, start, size) == (7, 0, 4)
        assert np.array_equal(views[0], p[0])
        assert np.array_equal(views[1], p[1])
        ring.release()

    def test_partial_batch_views(self, ring):
        p = _payload(1, size=2)
        ring.send(3, 8, 2, p, timeout=1.0)
        _, _, size, views = ring.recv(1.0)
        assert size == 2
        assert views[0].shape == (2, 3)
        assert np.array_equal(views[0], p[0])
        ring.release()

    def test_fifo_order(self, ring):
        for k in range(3):
            ring.send(k, k, 4, _payload(k), timeout=1.0)
        for k in range(3):
            pid, _, _, views = ring.recv(1.0)
            assert pid == k
            assert np.array_equal(views[0], _payload(k)[0])
            ring.release()

    def test_poll_and_try_recv(self, ring):
        assert not ring.poll()
        assert ring.try_recv() is None
        ring.send(0, 0, 4, _payload(0), timeout=1.0)
        assert ring.poll()
        assert ring.try_recv() is not None


class TestZeroCopy:
    def test_recv_views_share_slot_memory(self, ring):
        """The consumer reads the ring's own buffers — no copy, no pickle."""
        ring.send(0, 0, 4, _payload(0), timeout=1.0)
        _, _, _, views = ring.recv(1.0)
        for view, slot_arr in zip(views, ring._slot_views[0].arrays):
            assert np.shares_memory(view, slot_arr)

    def test_slot_buffers_are_reused_across_wraparound(self, ring):
        """Steady state allocates nothing: after the ring wraps, packets
        land at exactly the addresses preallocated at creation."""
        first_pass = []
        for k in range(3):
            ring.send(k, k, 4, _payload(k), timeout=1.0)
            _, _, _, views = ring.recv(1.0)
            first_pass.append([v.__array_interface__["data"][0] for v in views])
            ring.release()
        for k in range(3, 9):  # two more laps
            ring.send(k, k, 4, _payload(k), timeout=1.0)
            _, _, _, views = ring.recv(1.0)
            addrs = [v.__array_interface__["data"][0] for v in views]
            assert addrs == first_pass[k % 3]
            ring.release()

    def test_late_attach_consumer_sees_backlog(self, ring):
        """A consumer attaching after the producer ran ahead must start
        at ``tail``, not ``head`` (regression: spawn workers attach after
        the parent's first injection)."""
        ring.send(0, 0, 4, _payload(0), timeout=1.0)
        ring.send(1, 1, 4, _payload(1), timeout=1.0)
        late = ShmRing.attach(ring.descriptor)
        try:
            pid, _, _, views = late.recv(1.0)
            assert pid == 0
            assert np.array_equal(views[0], _payload(0)[0])
            late.release()
            assert late.recv(1.0)[0] == 1
            late.release()
        finally:
            late.close()


class TestCapacityAndErrors:
    def test_try_send_full_ring(self, ring):
        for k in range(3):
            assert ring.try_send(k, k, 4, _payload(k))
        assert not ring.try_send(3, 3, 4, _payload(3))
        ring.recv(1.0)
        ring.release()  # frees one slot
        assert ring.try_send(3, 3, 4, _payload(3))

    def test_send_stalls_loudly_when_full(self, ring):
        for k in range(3):
            ring.send(k, k, 4, _payload(k), timeout=1.0)
        with pytest.raises(TransportStall):
            ring.send(9, 9, 4, _payload(9), timeout=0.05)

    def test_recv_stalls_loudly_when_empty(self, ring):
        with pytest.raises(TransportStall):
            ring.recv(0.05)

    def test_release_without_recv_raises(self, ring):
        with pytest.raises(TransportError):
            ring.release()

    def test_deferred_release_keeps_slots_alive(self, ring):
        """Receiving without releasing holds capacity — the mechanism the
        compute stages use while a packet is between its F and B."""
        for k in range(3):
            ring.send(k, k, 4, _payload(k), timeout=1.0)
            ring.recv(1.0)
        assert ring.outstanding == 3
        assert not ring.try_send(3, 3, 4, _payload(3))
        ring.release()
        assert ring.try_send(3, 3, 4, _payload(3))

    def test_layout_mismatch_raises(self, ring):
        with pytest.raises(TransportError):
            ring.send(0, 0, 4, [np.zeros((4, 3))], timeout=1.0)  # 1 != 2
        with pytest.raises(TransportError):
            ring.send(0, 0, 4, [np.zeros((4, 5)), np.zeros(4)], timeout=1.0)
        with pytest.raises(TransportError):
            ring.send(
                0, 0, 4,
                [np.zeros((4, 3), dtype=np.float32), np.zeros(4)],
                timeout=1.0,
            )

    def test_oversize_batch_raises(self, ring):
        with pytest.raises(TransportError):
            ring.send(0, 0, 6, _payload(0, size=6), timeout=1.0)


class TestLayoutProbe:
    def test_probe_matches_executed_payload_shapes(self):
        model = small_cnn(num_classes=4, widths=(4, 8), seed=0)
        ex = PipelineExecutor(model, lr=0.01, mode="pb")
        x = np.zeros((1, 3, 8, 8))
        layouts = probe_boundary_layouts(ex.stages, x)
        assert len(layouts) == model.num_stages
        # replay the same packet for real and compare boundary layouts
        payload = [x]
        assert payload_specs(payload) == layouts[0]
        for s, stage in enumerate(ex.stages[:-1]):
            payload = stage.forward(0, payload, train=False)
            assert payload_specs(payload) == layouts[s + 1], f"boundary {s+1}"

    def test_probe_mutates_nothing(self):
        """Probing must not advance BatchNorm stats, dropout RNG streams
        or module training flags — it runs eval-mode under no_grad."""
        from repro.models.arch import StageDef, StageGraphModel
        from repro.nn import BatchNorm2d, Conv2d, Sequential
        from repro.nn.dropout import Dropout

        conv = Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        bn = BatchNorm2d(4)
        drop = Dropout(0.5, seed=3)
        model = StageGraphModel(
            [
                StageDef("block", module=Sequential(conv, bn, drop)),
                StageDef("loss", kind="loss"),
            ],
            name="probe_test",
        )
        model.train()
        ex = PipelineExecutor(model, lr=0.01, mode="pb")
        stats_before = {k: v.copy() for k, v in model.state_dict().items()}
        rng_before = drop._rng.bit_generator.state
        probe_boundary_layouts(ex.stages, np.zeros((2, 3, 8, 8)))
        stats_after = model.state_dict()
        assert set(stats_before) == set(stats_after)
        for k in stats_before:
            assert np.array_equal(stats_before[k], stats_after[k]), k
        assert drop._rng.bit_generator.state == rng_before
        assert all(
            m.training for m in model.modules()
        ), "probe must restore training mode"


class TestFencedMode:
    """``REPRO_SHM_FENCE=1`` forces the weak-memory-ordering fallback
    (every counter access through a per-ring lock).  Non-x86 machines
    take this path automatically; forcing it here keeps the lock
    plumbing — including its travel through pickled worker specs —
    exercised on x86 CI."""

    def test_fenced_ring_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_FENCE", "1")
        ring = ShmRing.create("fenced", [ArraySpec((2, 3), "float64")], 2)
        try:
            assert ring._fence is not None
            p = [np.arange(6.0).reshape(2, 3)]
            ring.send(1, 0, 2, p, timeout=1.0)
            pid, _, _, views = ring.recv(1.0)
            assert pid == 1
            assert np.array_equal(views[0], p[0])
            ring.release()
            assert ring.try_send(2, 2, 2, p)
        finally:
            ring.close()
            ring.unlink()

    @pytest.mark.concurrency
    def test_fenced_process_run_is_bit_exact(self, monkeypatch):
        from repro.pipeline import ProcessPipelineRunner

        monkeypatch.setenv("REPRO_SHM_FENCE", "1")
        rng = np.random.default_rng(4)
        X = rng.normal(size=(10, 3, 8, 8))
        Y = rng.integers(0, 4, size=10)
        m1 = small_cnn(num_classes=4, widths=(4,), seed=6)
        m2 = small_cnn(num_classes=4, widths=(4,), seed=6)
        sim = PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        runner = ProcessPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="pb", lockstep=True,
            stall_timeout=60.0,
        )
        proc = runner.train(X, Y)
        assert np.array_equal(sim.losses, proc.losses)


class TestRingSizing:
    def test_ring_slots_cover_inflight_cap(self):
        # D_s + 1 in-flight packets plus slack: stage 0 of a 4-stage
        # pipeline has D = 6, cap 7, so 9 slots at the default slack
        assert ring_slots_for(6) == 9
        assert ring_slots_for(0) == 3
        assert ring_slots_for(2, slack=0) == 3

    def test_build_pipeline_rings_topology(self):
        model = small_cnn(num_classes=4, widths=(4,), seed=0)
        ex = PipelineExecutor(model, lr=0.01, mode="pb")
        S = model.num_stages
        fwd, bwd = build_pipeline_rings(ex.stages, np.zeros((1, 3, 8, 8)))
        try:
            assert len(fwd) == S
            assert len(bwd) == S and bwd[-1] is None
            for s in range(S):
                assert fwd[s].slots == ring_slots_for(ex.stages[s].delay)
            for s in range(S - 1):
                assert bwd[s].slots == ring_slots_for(ex.stages[s].delay)
        finally:
            for r in fwd + [b for b in bwd if b is not None]:
                r.close()
                r.unlink()


class TestForwardOnlyStreaming:
    """Ring wraparound under sustained forward-only (serving) traffic:
    the tail chases the head across many full ring cycles, and FIFO
    slot-release ordering is preserved throughout."""

    def test_tail_chases_head_across_three_cycles(self, ring):
        """Stream 4x the ring's capacity packet-by-packet: every payload
        survives its trip through a reused slot, head/tail wrap in
        lockstep, and each slot's memory is visited once per cycle."""
        cycles = 4
        total = ring.slots * cycles  # 12 packets through 3 slots
        slot_addresses = []
        for i in range(total):
            p = [np.full((4, 3), float(i)), np.full((4,), float(i))]
            assert ring.try_send(i, i, 4, p)
            pid, start, size, views = ring.recv(1.0)
            assert (pid, start, size) == (i, i, 4)
            assert np.array_equal(views[0], p[0])
            assert np.array_equal(views[1], p[1])
            slot_addresses.append(views[0].__array_interface__["data"][0])
            ring.release()
            assert ring.outstanding == 0
        # the tail fully chased the head through `cycles` wraparounds
        assert int(ring._head[0]) == total
        assert int(ring._tail[0]) == total
        # slot memory is reused in strict rotation: the address pattern
        # repeats with period `slots` across all cycles
        period = slot_addresses[: ring.slots]
        assert len(set(period)) == ring.slots
        assert slot_addresses == period * cycles

    def test_pipelined_wraparound_with_lagging_release(self, ring):
        """Keep the ring nearly full (consumer holds one slot while the
        producer refills) for >= 3 full cycles: deferred FIFO release
        ordering holds and no payload is torn by the slot reuse."""
        depth = ring.slots - 1  # consumer always holds `depth` slots
        inflight = []
        sent = 0
        received = []
        total = ring.slots * 3 + depth
        while len(received) < total:
            while sent < total and ring.try_send(
                sent, sent, 4, [np.full((4, 3), float(sent)),
                                np.full((4,), float(sent))]
            ):
                sent += 1
            pkt = ring.try_recv()
            if pkt is not None:
                inflight.append(pkt)
            if inflight and (len(inflight) >= depth or pkt is None):
                pid, start, size, views = inflight.pop(0)
                # the oldest held views are still intact: the producer
                # could not have reused an unreleased slot
                assert np.array_equal(views[0], np.full((4, 3), float(pid)))
                received.append(pid)
                ring.release()  # strict FIFO: oldest slot freed first
        assert received == list(range(total))
        assert int(ring._head[0]) >= 3 * ring.slots

    def test_release_order_is_fifo_not_lifo(self, ring):
        """release() frees the *oldest* outstanding slot: consuming two
        packets and releasing once must keep the second packet's slot
        alive (its payload stays intact when the producer refills)."""
        for i in range(2):
            ring.send(i, i, 4, _payload(i), timeout=1.0)
        first = ring.try_recv()
        second = ring.try_recv()
        ring.release()  # frees packet 0's slot only
        assert ring.outstanding == 1
        # the freed slot (and the never-used third slot) can be
        # refilled; packet 1's slot must survive untouched
        ring.send(10, 10, 4, _payload(10), timeout=1.0)
        ring.send(11, 11, 4, _payload(11), timeout=1.0)
        assert not ring.try_send(12, 12, 4, _payload(12))  # 1 still held
        assert np.array_equal(second[3][0], _payload(1)[0])
        assert first is not None

    def test_build_inference_rings_topology(self):
        from repro.pipeline.transport import build_inference_rings

        model = small_cnn(num_classes=4, widths=(4,), seed=0)
        ex = PipelineExecutor(model, lr=0.01, mode="pb")
        S = model.num_stages
        rings = build_inference_rings(
            ex.stages, np.zeros((2, 3, 8, 8)), slots=5
        )
        try:
            # one forward ring per stage, no backward rings at all; the
            # last ring (into the loss slot) is the parent's result ring
            assert len(rings) == S
            assert all(r.slots == 5 for r in rings)
            assert rings[0].label.startswith("infer[inject")
        finally:
            for r in rings:
                r.close()
                r.unlink()

    def test_build_inference_rings_rejects_zero_slots(self):
        from repro.pipeline.transport import build_inference_rings

        model = small_cnn(num_classes=4, widths=(4,), seed=0)
        ex = PipelineExecutor(model, lr=0.01, mode="pb")
        with pytest.raises(TransportError, match="slot"):
            build_inference_rings(ex.stages, np.zeros((1, 3, 8, 8)), slots=0)
