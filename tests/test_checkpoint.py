"""Checkpoint round-trips: on-disk format, engine state, DurableRun.

The durability contract (`repro/pipeline/checkpoint.py`): a checkpoint
captured at a drain barrier restores **bit-exactly** — every stage
state_dict field hex-equal after a save→load round trip, across all four
schedules × all three engines, including into a *fresh process* started
with ``spawn`` — and a :class:`DurableRun` resumed from disk lands on
the same final weights and losses as the uninterrupted (cadence-matched)
run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import struct
from functools import partial

import numpy as np
import pytest

from repro.data.loader import ResumableSampleStream
from repro.models.simple import small_cnn
from repro.pipeline import (
    CHECKPOINT_VERSION,
    CheckpointError,
    ConcurrentPipelineRunner,
    DurableRun,
    PipelineExecutor,
    ProcessPipelineRunner,
    capture_checkpoint,
    load_checkpoint,
    model_fingerprint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.pipeline.checkpoint import CHECKPOINT_MAGIC
from repro.utils.rng import new_rng

from test_schedules_golden import (
    GOLDEN,
    LR,
    MOMENTUM,
    N_SAMPLES,
    RUNS,
    SEED,
    WEIGHT_DECAY,
)

STALL = 60.0

FACTORY = partial(small_cnn, num_classes=4, widths=(4,), seed=3)

#: (schedule kwargs) × (engine builder) matrices for the round-trip pins.
SCHEDULES = {
    "pb": dict(mode="pb"),
    "fill_drain": dict(mode="fill_drain", update_size=4),
    "gpipe": dict(mode="gpipe", update_size=4, micro_batch_size=2),
    "1f1b": dict(mode="1f1b"),
}

ENGINES = {
    "sim": lambda model, kw: PipelineExecutor(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY, **kw
    ),
    "threaded": lambda model, kw: ConcurrentPipelineRunner(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        lockstep=True, **kw
    ),
    "process": lambda model, kw: ProcessPipelineRunner(
        model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        lockstep=True, stall_timeout=STALL, model_factory=FACTORY, **kw
    ),
}


def _stream(n: int, seed: int = 99):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _hex_state(state: dict) -> dict:
    """Every engine-state array rendered as hex bytes for exact compare."""
    out = {
        "schedule": state["schedule"],
        "samples_completed": state["samples_completed"],
        "stages": [],
    }
    for st in state["stages"]:
        out["stages"].append(
            {
                "updates_applied": st["updates_applied"],
                "lr": float(st["lr"]).hex(),
                **{
                    key: [a.tobytes().hex() for a in st[key]]
                    for key in ("params", "velocity", "prev_weights")
                },
            }
        )
    return out


# ---------------------------------------------------------------------------
# on-disk format
# ---------------------------------------------------------------------------


class TestFileFormat:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = {
            "engine": {"stages": [], "samples_completed": 7},
            "stream": None,
            "metadata": {"note": "x"},
        }
        save_checkpoint(str(path), payload)
        loaded = load_checkpoint(str(path))
        assert loaded["engine"]["samples_completed"] == 7
        assert loaded["format_version"] == CHECKPOINT_VERSION
        assert loaded["metadata"] == {"note": "x"}

    def test_arrays_roundtrip_bit_exactly(self, tmp_path):
        path = tmp_path / "run.ckpt"
        arr = np.random.default_rng(0).normal(size=(5, 7))
        save_checkpoint(str(path), {"engine": {"a": arr}})
        back = load_checkpoint(str(path))["engine"]["a"]
        assert back.tobytes() == arr.tobytes()
        assert back.dtype == arr.dtype

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"NOT-A-CKPT-FILE")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + b"\x01")
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(str(path))

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "future.ckpt"
        body = pickle.dumps({"engine": {}})
        path.write_bytes(
            CHECKPOINT_MAGIC
            + struct.pack("<I", CHECKPOINT_VERSION + 1)
            + body
        )
        with pytest.raises(CheckpointError, match="newer"):
            load_checkpoint(str(path))

    def test_corrupt_body(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(
            CHECKPOINT_MAGIC + struct.pack("<I", CHECKPOINT_VERSION)
            + b"garbage"
        )
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(str(path))

    def test_overwrite_is_atomic_publish(self, tmp_path):
        """Saving over an existing checkpoint leaves no temp debris and
        the new content wins."""
        path = tmp_path / "run.ckpt"
        save_checkpoint(str(path), {"engine": {"v": 1}})
        save_checkpoint(str(path), {"engine": {"v": 2}})
        assert load_checkpoint(str(path))["engine"]["v"] == 2
        assert os.listdir(tmp_path) == ["run.ckpt"]


# ---------------------------------------------------------------------------
# engine state round trips: 4 schedules x 3 engines
# ---------------------------------------------------------------------------


def _train_engine(engine_key: str, sched_kw: dict, X, Y):
    model = FACTORY()
    engine = ENGINES[engine_key](model, dict(sched_kw))
    engine.train(X, Y)
    return model, engine


@pytest.mark.parametrize("engine_key", sorted(ENGINES))
@pytest.mark.parametrize("sched_key", sorted(SCHEDULES))
@pytest.mark.concurrency
class TestEngineRoundTrip:
    def test_every_state_field_hex_equal_after_save_load(
        self, tmp_path, engine_key, sched_key
    ):
        """The satellite contract: save→load hex-equality of every
        state_dict field (params/velocity/prev_weights arrays, update
        counters, lr) across schedules × engines."""
        X, Y = _stream(12)
        _, engine = _train_engine(engine_key, SCHEDULES[sched_key], X, Y)
        path = str(tmp_path / "e.ckpt")
        save_checkpoint(path, capture_checkpoint(engine))
        loaded = load_checkpoint(path)["engine"]
        assert _hex_state(loaded) == _hex_state(engine.state_dict())

    def test_restored_engine_continues_identically(
        self, tmp_path, engine_key, sched_key
    ):
        """Restore into a *fresh* engine, train more: hex-identical
        losses and final weights vs the uninterrupted engine."""
        X, Y = _stream(20, seed=5)
        m1, e1 = _train_engine(engine_key, SCHEDULES[sched_key], X[:12], Y[:12])
        path = str(tmp_path / "e.ckpt")
        save_checkpoint(path, capture_checkpoint(e1))

        m2 = FACTORY()
        e2 = ENGINES[engine_key](m2, dict(SCHEDULES[sched_key]))
        restore_checkpoint(load_checkpoint(path), engine=e2)
        s1 = e1.train(X[12:], Y[12:])
        s2 = e2.train(X[12:], Y[12:])
        assert [l.hex() for l in s1.losses] == [l.hex() for l in s2.losses]
        assert model_fingerprint(m1) == model_fingerprint(m2)
        assert e1.samples_completed == e2.samples_completed


class TestRestoreValidation:
    def test_schedule_mismatch_refused(self):
        X, Y = _stream(8)
        _, e1 = _train_engine("sim", SCHEDULES["pb"], X, Y)
        m2 = FACTORY()
        e2 = ENGINES["sim"](m2, dict(SCHEDULES["fill_drain"]))
        with pytest.raises(ValueError, match="schedule"):
            restore_checkpoint(capture_checkpoint(e1), engine=e2)

    def test_schedule_mismatch_names_both_schedules(self, tmp_path):
        """The refusal message must name the on-disk schedule *and* the
        session's, with their knobs — a mis-paired checkpoint should be
        diagnosable from the error alone."""
        X, Y = _stream(8)
        _, e1 = _train_engine("sim", SCHEDULES["gpipe"], X, Y)
        path = str(tmp_path / "gpipe.ckpt")
        save_checkpoint(path, capture_checkpoint(e1))
        m2 = FACTORY()
        e2 = ENGINES["sim"](m2, dict(SCHEDULES["pb"]))
        with pytest.raises(ValueError) as err:
            restore_checkpoint(load_checkpoint(path), engine=e2)
        message = str(err.value)
        assert "'gpipe'" in message  # the checkpoint's schedule
        assert "'pb'" in message  # the engine's schedule
        # and the identity knobs of each, so gpipe-vs-gpipe cadence
        # mismatches are equally diagnosable
        assert "update_size=4" in message and "micro_batch=2" in message
        assert "update_size=1" in message and "micro_batch=1" in message

    def test_shape_mismatch_keeps_engine_untouched(self):
        """Cross-stage atomicity: a bad payload in stage k leaves stages
        < k unmodified (validate-all-then-load-all)."""
        X, Y = _stream(8)
        _, e1 = _train_engine("sim", SCHEDULES["pb"], X, Y)
        state = e1.state_dict()
        # corrupt the *last* parameterized stage's arrays
        for st in reversed(state["stages"]):
            if st["params"]:
                st["params"] = [np.zeros((2, 2)) for _ in st["params"]]
                break
        m2 = FACTORY()
        e2 = ENGINES["sim"](m2, dict(SCHEDULES["pb"]))
        before = model_fingerprint(m2)
        with pytest.raises(ValueError, match="shape"):
            e2.load_state_dict(state)
        assert model_fingerprint(m2) == before

    def test_mid_flight_capture_refused(self):
        model = FACTORY()
        engine = PipelineExecutor(model, lr=LR, mode="pb")
        engine.stages[0].forward(0, [np.zeros((1, 3, 8, 8))])
        with pytest.raises(RuntimeError, match="drain"):
            capture_checkpoint(engine)

    def test_restore_without_stream_cursor_refused(self):
        X, Y = _stream(8)
        _, e1 = _train_engine("sim", SCHEDULES["pb"], X, Y)
        ckpt = capture_checkpoint(e1)  # no stream attached
        stream = ResumableSampleStream(X, Y, 1, new_rng(0))
        with pytest.raises(CheckpointError, match="stream"):
            restore_checkpoint(ckpt, stream=stream)


# ---------------------------------------------------------------------------
# fresh-process restore (spawn)
# ---------------------------------------------------------------------------


def _spawn_restore_probe(conn, path, sched_kw, x, y):
    """Child entry (spawn): load the checkpoint from disk, restore into
    a freshly built sim engine, train the tail, report fingerprints."""
    try:
        from repro.pipeline import PipelineExecutor, load_checkpoint

        model = FACTORY()
        engine = PipelineExecutor(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            **sched_kw,
        )
        engine.load_state_dict(load_checkpoint(path)["engine"])
        stats = engine.train(x, y)
        conn.send(
            (
                "ok",
                [l.hex() for l in stats.losses],
                model_fingerprint(model),
            )
        )
    except BaseException as exc:  # pragma: no cover - failure reporting
        conn.send(("err", repr(exc), ""))


@pytest.mark.concurrency(timeout=300)
def test_spawn_start_fresh_process_restore(tmp_path):
    """The satellite's spawn leg: a checkpoint written here restores in
    a brand-new interpreter (no inherited state whatsoever) and the
    continued run is hex-identical to the parent's."""
    X, Y = _stream(16, seed=21)
    m1, e1 = _train_engine("sim", SCHEDULES["pb"], X[:10], Y[:10])
    path = str(tmp_path / "spawn.ckpt")
    save_checkpoint(path, capture_checkpoint(e1))
    ref_stats = e1.train(X[10:], Y[10:])

    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_spawn_restore_probe,
        args=(child_conn, path, SCHEDULES["pb"], X[10:], Y[10:]),
        daemon=True,
    )
    proc.start()
    assert parent_conn.poll(240.0), "spawned child never replied"
    tag, losses, fingerprint = parent_conn.recv()
    proc.join(10.0)
    assert tag == "ok", losses
    assert losses == [l.hex() for l in ref_stats.losses]
    assert fingerprint == model_fingerprint(m1)


# ---------------------------------------------------------------------------
# DurableRun
# ---------------------------------------------------------------------------


def _golden_stream(n: int = N_SAMPLES):
    rng = np.random.default_rng(99)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 4, size=n)
    return X, Y


class TestDurableRun:
    @pytest.mark.parametrize("label", sorted(RUNS))
    def test_no_cadence_matches_canonical_goldens(self, label):
        """DurableRun with checkpointing disabled is a plain train():
        the canonical hex goldens hold verbatim through the driver."""
        X, Y = _golden_stream()
        model = small_cnn(num_classes=4, widths=(4, 8), seed=SEED)
        engine = PipelineExecutor(
            model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
            **RUNS[label],
        )
        stream = ResumableSampleStream(X, Y, 1, new_rng(0), augment=None)
        # bypass the shuffle: feed the canonical stream order directly
        stream._epoch_x, stream._epoch_y = X, Y
        stream._epoch_rng_state = stream.rng.bit_generator.state
        result = DurableRun(engine, stream).run()
        golden = GOLDEN[label]
        assert [float(l).hex() for l in result.losses] == golden["losses"]
        wsum = float(
            np.sum([float(p.data.sum()) for p in model.parameters()])
        ).hex()
        assert wsum == golden["weight_sum"]

    def test_cadence_rounds_up_to_update_size(self):
        model = FACTORY()
        engine = PipelineExecutor(
            model, lr=LR, mode="fill_drain", update_size=4
        )
        X, Y = _stream(8)
        stream = ResumableSampleStream(X, Y, 1, new_rng(0))
        run = DurableRun(engine, stream, checkpoint_every=5)
        assert run.checkpoint_every == 8  # 5 -> next multiple of 4

    def test_rejects_negative_cadence(self):
        model = FACTORY()
        engine = PipelineExecutor(model, lr=LR, mode="pb")
        X, Y = _stream(4)
        stream = ResumableSampleStream(X, Y, 1, new_rng(0))
        with pytest.raises(ValueError, match="checkpoint_every"):
            DurableRun(engine, stream, checkpoint_every=-1)

    def test_checkpoint_file_written_per_segment(self, tmp_path):
        path = str(tmp_path / "seg.ckpt")
        model = FACTORY()
        engine = PipelineExecutor(model, lr=LR, momentum=MOMENTUM, mode="pb")
        X, Y = _stream(12)
        stream = ResumableSampleStream(X, Y, 1, new_rng(0))
        result = DurableRun(
            engine, stream, checkpoint_path=path, checkpoint_every=4
        ).run()
        assert result.segments == 3
        assert result.samples == 12
        ckpt = load_checkpoint(path)
        assert ckpt["samples_completed"] == 12
        assert ckpt["checkpoint_every"] == 4
        assert ckpt["stream"]["epoch"] == 1  # one full epoch consumed

    @pytest.mark.parametrize("sched_key", sorted(SCHEDULES))
    def test_resume_lands_on_golden_weights_and_losses(
        self, tmp_path, sched_key
    ):
        """Kill the driver after its first snapshot; a freshly built
        engine + stream resumed from the file finishes with hex-equal
        weights and losses vs the uninterrupted cadence-matched run."""
        kw = SCHEDULES[sched_key]
        every = 8
        epochs = 2

        def build():
            model = FACTORY()
            engine = PipelineExecutor(
                model, lr=LR, momentum=MOMENTUM,
                weight_decay=WEIGHT_DECAY, **kw,
            )
            X, Y = _stream(16, seed=31)
            stream = ResumableSampleStream(X, Y, epochs, new_rng(12))
            return model, engine, stream

        m_gold, e_gold, s_gold = build()
        gold = DurableRun(e_gold, s_gold, checkpoint_every=every).run()

        path = str(tmp_path / "r.ckpt")
        _, e_int, s_int = build()
        DurableRun(
            e_int, s_int, checkpoint_path=path, checkpoint_every=every
        ).run(max_samples=every)  # "the job dies here"

        m_res, e_res, s_res = build()
        result = DurableRun.resume(path, e_res, s_res).run()
        assert model_fingerprint(m_res) == model_fingerprint(m_gold)
        assert [float(l).hex() for l in result.losses] == [
            float(l).hex() for l in gold.losses[every:]
        ]
        assert e_res.samples_completed == e_gold.samples_completed

    def test_resume_keeps_stored_cadence(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        model = FACTORY()
        engine = PipelineExecutor(model, lr=LR, mode="pb")
        X, Y = _stream(12)
        stream = ResumableSampleStream(X, Y, 1, new_rng(0))
        DurableRun(
            engine, stream, checkpoint_path=path, checkpoint_every=4
        ).run(max_samples=4)
        m2 = FACTORY()
        e2 = PipelineExecutor(m2, lr=LR, mode="pb")
        s2 = ResumableSampleStream(X, Y, 1, new_rng(0))
        run = DurableRun.resume(path, e2, s2)
        assert run.checkpoint_every == 4
        assert e2.samples_completed == 4
        assert s2.position == 4
