"""Appendix-A cost model: activation memory, parameters, communication."""

import numpy as np
import pytest

from repro.models import resnet_tiny, small_cnn
from repro.pipeline.costs import (
    batch_parallel_activation_elements,
    data_parallel_comm_per_update,
    pipeline_comm_per_step,
    pipeline_cost_model,
)


class TestPipelineCostModel:
    def test_stage_costs_cover_all_stages(self):
        m = small_cnn(widths=(4, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        assert len(cm.stage_costs) == m.num_stages

    def test_parameter_totals_match_model(self):
        m = resnet_tiny(widths=(4, 8, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        assert cm.total_parameter_elements == m.num_parameters()

    def test_in_flight_follows_delay_law(self):
        m = small_cnn(widths=(4, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        S = m.num_stages
        for sc in cm.stage_costs:
            assert sc.max_in_flight == 2 * (S - 1 - sc.index)

    def test_early_stages_hold_the_most(self):
        """Appendix A: 'the first worker must store its activations for 2W
        steps, the second for 2(W-1)...'"""
        m = small_cnn(widths=(8, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        assert (
            cm.stage_costs[0].max_in_flight
            > cm.stage_costs[-2].max_in_flight
        )
        assert cm.stage_costs[-1].stash_elements == 0  # loss stage

    def test_activation_sizes_match_forward_shapes(self):
        m = small_cnn(widths=(4, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        # conv stages keep 8x8 spatial with 4 then 8 channels
        assert cm.stage_costs[0].activation_elements == 4 * 8 * 8
        assert cm.stage_costs[1].activation_elements == 8 * 8 * 8
        # pooling stage reduces to channel vector
        assert cm.stage_costs[2].activation_elements == 8

    def test_residual_skip_attributed_to_pushing_stage(self):
        m = resnet_tiny(widths=(4, 8, 8), blocks_per_group=1)
        cm = pipeline_cost_model(m, (3, 8, 8))
        by_name = {sc.name: sc for sc in cm.stage_costs}
        # the first block's conv1 pushes a skip: its payload contribution
        # includes both the conv output and the skip copy
        conv1 = by_name["g0b0_conv1"]
        assert conv1.activation_elements > 4 * 8 * 8

    def test_one_parameter_copy(self):
        m = small_cnn()
        cm = pipeline_cost_model(m, (3, 8, 8))
        assert cm.per_worker_parameter_copies() == 1


class TestComparisons:
    def test_batch_parallel_activation_memory_scales_with_batch(self):
        m = small_cnn(widths=(4, 8))
        one = batch_parallel_activation_elements(m, (3, 8, 8), 1)
        many = batch_parallel_activation_elements(m, (3, 8, 8), 32)
        assert many == 32 * one

    def test_total_activation_memory_same_order(self):
        """Appendix A: total activation memory is O(L*W) in both modes."""
        m = small_cnn(widths=(8, 8, 8, 8))
        cm = pipeline_cost_model(m, (3, 8, 8))
        S = m.num_stages
        # batch parallel with W = S workers at per-worker batch 1
        batch_total = S * batch_parallel_activation_elements(m, (3, 8, 8), 1)
        pipe_total = cm.total_stash_elements
        assert 0.05 < pipe_total / batch_total < 20.0

    def test_communication_patterns(self):
        """Pipeline workers exchange activations; data-parallel workers
        exchange the full gradient."""
        m = resnet_tiny(widths=(4, 8, 8))
        per_step = pipeline_comm_per_step(m, (3, 8, 8))
        assert len(per_step) == m.num_stages
        dp = data_parallel_comm_per_update(m)
        assert dp == m.num_parameters()
        # for this conv net, any single stage's activation traffic per
        # step is far below a full-model gradient exchange
        assert max(per_step) < dp
