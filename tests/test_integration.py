"""Cross-system integration tests: the paper's claims at micro scale."""

import numpy as np
import pytest

from repro.core import DelayedSGDM, MitigationConfig, delayed_train_step
from repro.core.compensation import spike_coefficients
from repro.data import iterate_batches
from repro.models import resnet_tiny, small_cnn
from repro.optim import HyperParams
from repro.pipeline import PipelineExecutor, pipeline_delay_profile
from repro.quadratic import ConvexQuadratic, run_delayed_quadratic
from repro.train.metrics import evaluate
from repro.utils.rng import new_rng

REF = HyperParams(lr=0.5, momentum=0.9, batch_size=32, weight_decay=1e-4)


def train_sim(model, ds, delay, mitigation, steps=100, batch=16,
              consistent=True, seed=0):
    hp = REF.scaled_to(batch)
    opt = DelayedSGDM(
        model, lr=hp.lr, momentum=hp.momentum, weight_decay=hp.weight_decay,
        delay=delay, mitigation=mitigation, consistent=consistent,
    )
    rng = new_rng(seed)
    done = 0
    while done < steps:
        for xb, yb in iterate_batches(ds.x_train, ds.y_train, batch, rng=rng):
            delayed_train_step(opt, model, xb, yb)
            done += 1
            if done >= steps:
                break
    return evaluate(model, ds.x_val, ds.y_val)[1]


class TestDelayDegradesTraining:
    """Figure 10's headline at micro scale: staleness costs accuracy."""

    def test_delay_hurts(self, tiny_dataset):
        accs = {}
        for d in (0, 8):
            model = small_cnn(num_classes=4, widths=(8, 16), seed=3)
            accs[d] = train_sim(
                model, tiny_dataset, d, MitigationConfig.none(), steps=80
            )
        assert accs[8] < accs[0]

    def test_mitigation_recovers_on_quadratic(self):
        """The optimization-level claim, exactly: combined mitigation beats
        plain delayed SGDM on an ill-conditioned quadratic."""
        quad = ConvexQuadratic.log_spectrum(kappa=1e3, n=32)
        m, D, lr = 0.9, 8, 0.015
        plain = run_delayed_quadratic(quad, lr, m, D, steps=1200)
        a, b = spike_coefficients(m, D)
        combo = run_delayed_quadratic(
            quad, lr, m, D, a=a, b=b, T=float(D), steps=1200
        )
        assert combo[-1] < plain[-1] * 0.5


class TestSimulatorEmulatesPipeline:
    """The flat Appendix-G.2 simulator with a per-stage profile must agree
    qualitatively with the cycle-accurate executor."""

    def test_per_stage_profile_matches_stage_delays(self):
        model = resnet_tiny(widths=(4, 8, 8), seed=1)
        profile = pipeline_delay_profile(model, sim_batch_size=1)
        stage_of = model.param_stage_index()
        S = model.num_stages
        for p in model.parameters():
            expected = 2 * (S - 1 - stage_of[id(p)])
            assert profile.mapping[id(p)] == expected

    def test_both_engines_train_above_chance(self, tiny_dataset):
        # executor path (true PB)
        m1 = resnet_tiny(
            num_classes=4, widths=(4, 8, 8), seed=1
        )
        hp = REF.scaled_to(1)
        ex = PipelineExecutor(
            m1, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, mode="pb",
            mitigation=MitigationConfig.lwp_plus_sc(),
        )
        rng = new_rng(0)
        idx = rng.permutation(tiny_dataset.x_train.shape[0])
        for _ in range(3):
            ex.train(tiny_dataset.x_train[idx], tiny_dataset.y_train[idx])
        acc_exec = evaluate(m1, tiny_dataset.x_val, tiny_dataset.y_val)[1]

        # simulator path (per-stage profile at batch 4)
        m2 = resnet_tiny(num_classes=4, widths=(4, 8, 8), seed=1)
        profile = pipeline_delay_profile(m2, sim_batch_size=4)
        acc_sim = train_sim(
            m2, tiny_dataset, profile, MitigationConfig.lwp_plus_sc(),
            steps=144, batch=4, consistent=False,
        )
        assert acc_exec > 0.3  # chance 0.25
        assert acc_sim > 0.3

    def test_executor_mitigation_beats_plain_pb_when_delay_bites(
        self, tiny_dataset
    ):
        """On a deeper tiny pipeline with a hot LR, plain PB loses accuracy
        that the combined mitigation recovers (Figure 8's shape)."""
        accs = {}
        for name, mit in (
            ("pb", MitigationConfig.none()),
            ("combo", MitigationConfig.lwp_plus_sc()),
        ):
            model = resnet_tiny(
                num_classes=4, blocks_per_group=2, widths=(4, 8, 8), seed=1
            )
            hp = REF.scaled_to(1)
            ex = PipelineExecutor(
                model, lr=hp.lr * 2.0, momentum=hp.momentum,
                weight_decay=hp.weight_decay, mode="pb", mitigation=mit,
            )
            rng = new_rng(0)
            idx = rng.permutation(tiny_dataset.x_train.shape[0])
            for _ in range(3):
                ex.train(tiny_dataset.x_train[idx], tiny_dataset.y_train[idx])
            accs[name] = evaluate(
                model, tiny_dataset.x_val, tiny_dataset.y_val
            )[1]
        assert accs["combo"] >= accs["pb"] - 0.05


class TestScaledHyperparametersTransfer:
    """Figure 17's claim: eq.-9 scaling makes batch-1 match the reference."""

    def test_scaled_batch1_close_to_reference(self, tiny_dataset):
        from repro.optim import SGDM
        from repro.tensor import Tensor, cross_entropy

        results = {}
        total = tiny_dataset.x_train.shape[0] * 2
        for tag, batch in (("ref", 16), ("scaled", 1)):
            hp = REF.scaled_to(batch)
            model = small_cnn(num_classes=4, widths=(8, 16), seed=3)
            opt = SGDM(model.parameters(), lr=hp.lr, momentum=hp.momentum,
                       weight_decay=hp.weight_decay)
            rng = new_rng(1)
            seen = 0
            while seen < total:
                for xb, yb in iterate_batches(
                    tiny_dataset.x_train, tiny_dataset.y_train, batch, rng=rng
                ):
                    loss = cross_entropy(model(Tensor(xb)), yb)
                    opt.zero_grad()
                    loss.backward()
                    opt.step()
                    seen += len(yb)
                    if seen >= total:
                        break
            results[tag] = evaluate(
                model, tiny_dataset.x_val, tiny_dataset.y_val
            )[1]
        assert abs(results["scaled"] - results["ref"]) < 0.25


class TestExperimentRegistry:
    def test_registry_complete(self):
        from repro.experiments import EXPERIMENTS

        expected = {
            "fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig12", "fig13", "fig14", "fig16", "fig17",
            "table1", "table2", "table3", "table4", "table6",
            "ablation_bn_vs_gn", "ablation_warmup",
            "ablation_gradient_shrinking", "schedule_comparison",
            "runtime_comparison", "durable_training", "serving",
            "serving_fleet",
            "hybrid_parallelism",
        }
        assert set(EXPERIMENTS) == expected
        for exp_id, (fn, desc) in EXPERIMENTS.items():
            assert callable(fn)
            assert desc

    def test_unknown_experiment_raises(self):
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fast_experiments_run(self):
        """The pure-analysis experiments run end to end in-process."""
        from repro.experiments import run_experiment

        for eid in ("fig02", "fig05", "fig16"):
            payload = run_experiment(eid)
            assert "meta" in payload

    def test_scale_resolution(self):
        from repro.experiments import get_scale

        assert get_scale("bench").name == "bench"
        assert get_scale("paper").seeds == 5
        with pytest.raises(ValueError):
            get_scale("huge")
