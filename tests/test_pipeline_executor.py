"""Cycle-accurate executor: equivalences, the eq.-5 version law, modes."""

import numpy as np
import pytest

from repro.core import MitigationConfig
from repro.models import resnet_tiny, small_cnn, vgg_tiny
from repro.optim import SGDM
from repro.pipeline import PipelineExecutor
from repro.pipeline.executor import softmax_xent_grad
from repro.tensor import Tensor, cross_entropy


@pytest.fixture
def data(rng):
    return rng.normal(size=(24, 3, 8, 8)), rng.integers(0, 10, size=24)


def max_param_diff(m1, m2):
    return max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )


class TestLossStage:
    def test_softmax_xent_grad_matches_autodiff(self, rng):
        z = rng.normal(size=(1, 7))
        label = 4
        loss, grad = softmax_xent_grad(z, label)
        t = Tensor(z, requires_grad=True)
        ref = cross_entropy(t, [label])
        ref.backward()
        assert loss == pytest.approx(float(ref.data), abs=1e-12)
        np.testing.assert_allclose(grad, t.grad, atol=1e-12)


class TestFillDrainEquivalence:
    """The Figure-16 validation: fill&drain SGD == sequential batch SGD."""

    def test_small_cnn(self, data):
        X, Y = data
        N = 4
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        ex = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4,
            mode="fill_drain", update_size=N,
        )
        ex.train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        for b in range(len(Y) // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-10

    def test_resnet_with_skip_paths(self, rng):
        """The skip-stack pipeline routing must be numerically exact too."""
        X = rng.normal(size=(12, 3, 8, 8))
        Y = rng.integers(0, 10, size=12)
        N = 3
        m1 = resnet_tiny(widths=(4, 8, 8), seed=2)
        m2 = resnet_tiny(widths=(4, 8, 8), seed=2)
        ex = PipelineExecutor(m1, lr=0.02, momentum=0.9, mode="fill_drain", update_size=N)
        ex.train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.02, momentum=0.9)
        for b in range(len(Y) // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-10

    def test_fill_drain_utilization_matches_formula(self, data):
        from repro.pipeline import fill_drain_utilization

        X, Y = data
        N = 4
        m = small_cnn(seed=5)
        ex = PipelineExecutor(m, lr=0.01, mode="fill_drain", update_size=N)
        stats = ex.train(X, Y)
        assert stats.utilization == pytest.approx(
            fill_drain_utilization(m.num_stages, N), abs=1e-9
        )


class TestPBSemantics:
    def test_version_law_eq5(self, data):
        """Forward version = max(0, i - 2(S-1-s)); backward version = i."""
        X, Y = data
        m = small_cnn(seed=5)
        ex = PipelineExecutor(m, lr=0.01, momentum=0.9, mode="pb",
                              record_versions=True)
        ex.train(X, Y)
        S = m.num_stages
        checked = 0
        for s, stage in enumerate(ex.stages):
            if stage.spec.kind != "compute":
                continue  # structural stages keep no stash/trace
            D = 2 * (S - 1 - s)
            assert stage.version_trace, f"stage {s} recorded nothing"
            for sid, v_fwd, v_bwd in stage.version_trace:
                assert v_fwd == max(0, sid - D)
                assert v_bwd == sid
            checked += 1
        assert checked >= 4

    def test_pb_differs_from_sgdm(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        PipelineExecutor(
            m2, lr=0.05, momentum=0.9, mode="fill_drain", update_size=1
        ).train(X, Y)
        assert max_param_diff(m1, m2) > 1e-12

    def test_pb_utilization_approaches_one(self, rng):
        m = small_cnn(seed=5)
        n = 200
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        stats = PipelineExecutor(m, lr=0.001, mode="pb").train(X, Y)
        S = m.num_stages
        assert stats.utilization == pytest.approx(n / (n + 2 * S - 2), abs=1e-9)
        assert stats.utilization > 0.9

    def test_every_stage_updates_once_per_sample(self, data):
        X, Y = data
        m = small_cnn(seed=5)
        ex = PipelineExecutor(m, lr=0.01, mode="pb")
        ex.train(X, Y)
        assert all(u == len(Y) for u in (s.updates_applied for s in ex.stages))

    def test_stash_fully_drained(self, data):
        X, Y = data
        m = resnet_tiny(widths=(4, 8, 8), seed=0)
        ex = PipelineExecutor(m, lr=0.01, mode="pb")
        ex.train(X, Y)
        assert all(s.in_flight == 0 for s in ex.stages)

    def test_total_steps(self, data):
        """A stream of n samples takes n + 2S - 2 steps."""
        X, Y = data
        m = small_cnn(seed=5)
        stats = PipelineExecutor(m, lr=0.01, mode="pb").train(X, Y)
        assert stats.time_steps == len(Y) + 2 * m.num_stages - 2


class TestMitigationsInExecutor:
    @pytest.mark.parametrize(
        "mitigation",
        [
            MitigationConfig.none(),
            MitigationConfig.sc(),
            MitigationConfig.lwp(),
            MitigationConfig.lwp("w"),
            MitigationConfig.lwp_plus_sc(),
            MitigationConfig.stashing(),
            MitigationConfig.spectrain(),
            MitigationConfig.gradient_shrinking(),
        ],
        ids=lambda m: m.name,
    )
    def test_runs_and_stays_finite(self, data, mitigation):
        X, Y = data
        m = resnet_tiny(widths=(4, 8, 8), seed=1)
        ex = PipelineExecutor(
            m, lr=0.005, momentum=0.99, mitigation=mitigation, mode="pb"
        )
        stats = ex.train(X, Y)
        assert np.all(np.isfinite(stats.losses))
        assert all(np.all(np.isfinite(p.data)) for p in m.parameters())

    def test_mitigations_change_trajectory(self, data):
        X, Y = data
        m1 = small_cnn(seed=5)
        m2 = small_cnn(seed=5)
        PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        PipelineExecutor(
            m2, lr=0.05, momentum=0.9, mode="pb",
            mitigation=MitigationConfig.lwp_plus_sc(),
        ).train(X, Y)
        assert max_param_diff(m1, m2) > 1e-12

    def test_vgg_with_dropout_runs(self, rng):
        X = rng.normal(size=(10, 3, 16, 16))
        Y = rng.integers(0, 10, size=10)
        m = vgg_tiny(seed=0)
        stats = PipelineExecutor(m, lr=0.005, momentum=0.99, mode="pb").train(X, Y)
        assert np.all(np.isfinite(stats.losses))


class TestExecutorValidation:
    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            PipelineExecutor(small_cnn(), lr=0.1, mode="magic")

    def test_mismatched_xy_raises(self, rng):
        ex = PipelineExecutor(small_cnn(), lr=0.1)
        with pytest.raises(ValueError):
            ex.train(rng.normal(size=(4, 3, 8, 8)), np.zeros(3, dtype=int))

    def test_lr_schedule_applied(self, data):
        X, Y = data
        m = small_cnn(seed=5)
        ex = PipelineExecutor(
            m, lr=1.0, mode="pb", lr_schedule=lambda s: 0.123
        )
        ex.train(X, Y)
        assert all(st.lr == 0.123 for st in ex.stages)
