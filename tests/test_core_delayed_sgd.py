"""The Appendix-G.2 delay simulator: equivalences and semantics."""

import numpy as np
import pytest

from repro.core import (
    ConstantDelay,
    DelayedSGDM,
    MitigationConfig,
    PerParamDelay,
    RandomDelay,
    delayed_train_step,
)
from repro.core.history import ParamHistory
from repro.models import small_cnn
from repro.optim import SGDM
from repro.tensor import Tensor, cross_entropy


def train_steps(model, opt, X, Y, steps, bs=4):
    for i in range(steps):
        s = (i * bs) % (len(Y) - bs)
        delayed_train_step(opt, model, X[s : s + bs], Y[s : s + bs])


def max_param_diff(m1, m2):
    return max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )


@pytest.fixture
def data(rng):
    return rng.normal(size=(64, 3, 8, 8)), rng.integers(0, 10, size=64)


class TestExactEquivalences:
    def test_zero_delay_equals_sgdm(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        ref = SGDM(m1.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        dly = DelayedSGDM(m2, lr=0.05, momentum=0.9, delay=0, weight_decay=1e-4)
        for i in range(8):
            xb, yb = X[i * 4 : (i + 1) * 4], Y[i * 4 : (i + 1) * 4]
            loss = cross_entropy(m1(Tensor(xb)), yb)
            ref.zero_grad()
            loss.backward()
            ref.step()
            delayed_train_step(dly, m2, xb, yb)
        assert max_param_diff(m1, m2) < 1e-12

    def test_sc_at_zero_delay_equals_sgdm(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=0)
        o2 = DelayedSGDM(
            m2, lr=0.05, momentum=0.9, delay=0, mitigation=MitigationConfig.sc()
        )
        train_steps(m1, o1, X, Y, 8)
        train_steps(m2, o2, X, Y, 8)
        assert max_param_diff(m1, m2) < 1e-12

    def test_lwp_zero_horizon_equals_plain_delay(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=3, consistent=True)
        o2 = DelayedSGDM(
            m2,
            lr=0.05,
            momentum=0.9,
            delay=3,
            consistent=True,
            mitigation=MitigationConfig.lwp(horizon=0.0),
        )
        train_steps(m1, o1, X, Y, 8)
        train_steps(m2, o2, X, Y, 8)
        assert max_param_diff(m1, m2) < 1e-12

    def test_lwpv_equals_lwpw_for_plain_sgdm(self, data):
        """eqs. 18/19 coincide when no spike compensation is active."""
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(
            m1, lr=0.05, momentum=0.9, delay=3, consistent=True,
            mitigation=MitigationConfig.lwp("v"),
        )
        o2 = DelayedSGDM(
            m2, lr=0.05, momentum=0.9, delay=3, consistent=True,
            mitigation=MitigationConfig.lwp("w"),
        )
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) < 1e-9

    def test_lwpv_differs_from_lwpw_with_sc(self, data):
        """eq. 26: the combination breaks the LWPv/LWPw equivalence."""
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(
            m1, lr=0.05, momentum=0.9, delay=3, consistent=True,
            mitigation=MitigationConfig.lwp_plus_sc("v"),
        )
        o2 = DelayedSGDM(
            m2, lr=0.05, momentum=0.9, delay=3, consistent=True,
            mitigation=MitigationConfig.lwp_plus_sc("w"),
        )
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) > 1e-10

    def test_stashing_equals_consistent(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=3, consistent=True)
        o2 = DelayedSGDM(
            m2, lr=0.05, momentum=0.9, delay=3, consistent=False,
            mitigation=MitigationConfig.stashing(),
        )
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) == 0.0

    def test_inconsistent_differs_from_consistent(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=3, consistent=True)
        o2 = DelayedSGDM(m2, lr=0.05, momentum=0.9, delay=3, consistent=False)
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) > 1e-10

    def test_delay_changes_trajectory(self, data):
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=0)
        o2 = DelayedSGDM(m2, lr=0.05, momentum=0.9, delay=4, consistent=True)
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) > 1e-10

    def test_gradient_shrinking_shrinks(self, data):
        """With shrink base m, first-step update is scaled by m^D."""
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        w0 = [p.data.copy() for p in m1.parameters()]
        o1 = DelayedSGDM(m1, lr=0.05, momentum=0.9, delay=2, consistent=True)
        o2 = DelayedSGDM(
            m2, lr=0.05, momentum=0.9, delay=2, consistent=True,
            mitigation=MitigationConfig.gradient_shrinking(),
        )
        delayed_train_step(o1, m1, X[:4], Y[:4])
        delayed_train_step(o2, m2, X[:4], Y[:4])
        for w_init, p1, p2 in zip(w0, m1.parameters(), m2.parameters()):
            step1 = p1.data - w_init
            step2 = p2.data - w_init
            np.testing.assert_allclose(step2, 0.81 * step1, atol=1e-12)


class TestDelayProfiles:
    def test_constant_profile(self):
        p = ConstantDelay(4)
        assert p.max_delay() == 4
        assert p.delay_for(123, 0) == 4
        with pytest.raises(ValueError):
            ConstantDelay(-1)

    def test_per_param_profile(self):
        p = PerParamDelay({1: 3, 2: 7}, default=1)
        assert p.max_delay() == 7
        assert p.delay_for(1, 0) == 3
        assert p.delay_for(99, 0) == 1

    def test_random_profile_reproducible(self):
        p1 = RandomDelay(0, 5, seed=11)
        p2 = RandomDelay(0, 5, seed=11)
        seq1 = []
        seq2 = []
        for t in range(20):
            p1.begin_step(t)
            p2.begin_step(t)
            seq1.append(p1.delay_for(0, t))
            seq2.append(p2.delay_for(0, t))
        assert seq1 == seq2
        assert min(seq1) >= 0 and max(seq1) <= 5
        assert len(set(seq1)) > 1  # actually random

    def test_random_profile_validation(self):
        with pytest.raises(ValueError):
            RandomDelay(3, 2)

    def test_per_param_delays_in_training(self, data, rng):
        """Parameters with different delays must evolve differently from a
        constant-delay run."""
        X, Y = data
        m1, m2 = small_cnn(seed=3), small_cnn(seed=3)
        params = m1.parameters()
        mapping = {id(p): (0 if i % 2 else 6) for i, p in enumerate(params)}
        o1 = DelayedSGDM(
            m1, lr=0.05, momentum=0.9, delay=PerParamDelay(mapping),
            consistent=True,
        )
        o2 = DelayedSGDM(m2, lr=0.05, momentum=0.9, delay=3, consistent=True)
        train_steps(m1, o1, X, Y, 10)
        train_steps(m2, o2, X, Y, 10)
        assert max_param_diff(m1, m2) > 1e-10


class TestHistory:
    def test_push_get(self, rng):
        h = ParamHistory(maxlen=4)
        arrs = [rng.normal(size=3) for _ in range(4)]
        for a in arrs:
            h.push(a, np.zeros(3))
        np.testing.assert_array_equal(h.get(0)[0], arrs[-1])
        np.testing.assert_array_equal(h.get(2)[0], arrs[-3])

    def test_clamps_to_oldest(self, rng):
        h = ParamHistory(maxlen=5)
        h.push(np.ones(2), np.zeros(2))
        np.testing.assert_array_equal(h.get(100)[0], np.ones(2))

    def test_push_copies(self):
        h = ParamHistory(maxlen=2)
        a = np.ones(2)
        h.push(a, a)
        a[:] = 5.0
        np.testing.assert_array_equal(h.get(0)[0], np.ones(2))

    def test_empty_get_raises(self):
        with pytest.raises(RuntimeError):
            ParamHistory(maxlen=2).get(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParamHistory(maxlen=0)


class TestProtocol:
    def test_step_without_load_raises(self):
        m = small_cnn(seed=0)
        opt = DelayedSGDM(m, lr=0.1, delay=1)
        with pytest.raises(RuntimeError):
            opt.step()

    def test_prepare_backward_without_load_raises(self):
        m = small_cnn(seed=0)
        opt = DelayedSGDM(m, lr=0.1, delay=1)
        with pytest.raises(RuntimeError):
            opt.prepare_backward()

    def test_momentum_validation(self):
        m = small_cnn(seed=0)
        with pytest.raises(ValueError):
            DelayedSGDM(m, lr=0.1, momentum=1.0, delay=0)

    def test_no_params_raises(self):
        with pytest.raises(ValueError):
            DelayedSGDM([], lr=0.1)

    def test_master_restored_after_step(self, data):
        """Between steps the model holds the master weights."""
        X, Y = data
        m = small_cnn(seed=3)
        opt = DelayedSGDM(m, lr=0.05, momentum=0.9, delay=3, consistent=True)
        delayed_train_step(opt, m, X[:4], Y[:4])
        p = m.parameters()[0]
        w_after = p.data.copy()
        # one more step: the forward weights differ, but after step() the
        # master is back in place and history's newest entry equals it
        delayed_train_step(opt, m, X[4:8], Y[4:8])
        hist_w, _ = opt._history[id(p)].get(0)
        np.testing.assert_array_equal(hist_w, p.data)
        assert not np.array_equal(w_after, p.data)
