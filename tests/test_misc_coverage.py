"""Small coverage tests: reprs, item(), summaries, renderers."""

import numpy as np
import pytest

from repro.models import resnet_tiny, small_cnn
from repro.pipeline.partition import parameter_stage_summary
from repro.tensor import Tensor


class TestTensorMisc:
    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_item_vector_raises(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).item()

    def test_repr(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "shape=(2, 3)" in repr(t)
        assert "requires_grad=True" in repr(t)

    def test_numpy_returns_underlying(self):
        t = Tensor(np.arange(3.0))
        assert t.numpy() is t.data

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestStageSummaries:
    def test_parameter_stage_summary_rows(self):
        m = resnet_tiny(widths=(4, 8, 8), blocks_per_group=1)
        rows = parameter_stage_summary(m)
        assert len(rows) == m.num_stages
        # skip annotations present
        skips = {r["skip"] for r in rows}
        assert "push" in skips and "pop" in skips
        # loss stage is parameter-free
        assert rows[-1]["params"] == 0

    def test_describe_includes_param_counts(self):
        m = small_cnn(widths=(4, 8))
        text = m.describe()
        assert "params=" in text
        assert str(m.num_stages) in text.splitlines()[0]


class TestDatasetRepr:
    def test_dataset_repr(self, tiny_dataset):
        text = repr(tiny_dataset)
        assert "train=" in text and "classes=4" in text

    def test_profile_reprs(self):
        from repro.core import ConstantDelay, PerParamDelay, RandomDelay

        assert "4" in repr(ConstantDelay(4))
        assert "max=7" in repr(PerParamDelay({1: 7}))
        assert "[1, 5]" in repr(RandomDelay(1, 5))
