"""Executor edge cases: tail batches, single samples, repeated runs,
and the degenerate zero-sample / zero-step streams for every schedule."""

import numpy as np
import pytest

from repro.core import MitigationConfig
from repro.models import small_cnn
from repro.optim import SGDM
from repro.pipeline import PipelineExecutor, PipelineRunStats
from repro.tensor import Tensor, cross_entropy

#: Every schedule with its canonical kwargs (micro-batched gpipe wider
#: than some of the streams below, deliberately).
ALL_SCHEDULES = [
    ("pb", {}),
    ("1f1b", {}),
    ("fill_drain", dict(update_size=4)),
    ("gpipe", dict(update_size=4, micro_batch_size=4)),
]


def max_param_diff(m1, m2):
    return max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )


class TestFillDrainTailBatch:
    def test_partial_final_batch_matches_reference(self, rng):
        """n not divisible by N: the tail batch must average over its own
        size, exactly as the reference does."""
        n, N = 10, 4  # batches of 4, 4, 2
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m1, m2 = small_cnn(seed=7), small_cnn(seed=7)
        PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="fill_drain", update_size=N
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9)
        for start in range(0, n, N):
            xb, yb = X[start : start + N], Y[start : start + N]
            loss = cross_entropy(m2(Tensor(xb)), yb)
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-10

    def test_update_size_larger_than_stream(self, rng):
        """A single batch smaller than update_size still drains/updates."""
        X = rng.normal(size=(3, 3, 8, 8))
        Y = rng.integers(0, 10, size=3)
        m = small_cnn(seed=7)
        ex = PipelineExecutor(
            m, lr=0.05, momentum=0.9, mode="fill_drain", update_size=8
        )
        stats = ex.train(X, Y)
        assert stats.samples == 3
        assert all(s.updates_applied == 1 for s in ex.stages)


class TestSmallStreams:
    def test_single_sample_pb(self, rng):
        X = rng.normal(size=(1, 3, 8, 8))
        Y = rng.integers(0, 10, size=1)
        m = small_cnn(seed=7)
        stats = PipelineExecutor(m, lr=0.05, mode="pb").train(X, Y)
        assert stats.samples == 1
        assert stats.time_steps == 1 + 2 * m.num_stages - 2
        assert np.isfinite(stats.losses[0])

    def test_consecutive_trains_continue_state(self, rng):
        """Calling train() twice equals one train() over the concatenated
        stream up to the pipeline boundary effects of draining between."""
        X = rng.normal(size=(8, 3, 8, 8))
        Y = rng.integers(0, 10, size=8)
        m = small_cnn(seed=7)
        ex = PipelineExecutor(m, lr=0.02, momentum=0.9, mode="pb")
        ex.train(X[:4], Y[:4])
        ex.train(X[4:], Y[4:])
        assert ex.samples_completed == 8
        assert all(s.updates_applied == 8 for s in ex.stages)

    def test_empty_stream(self, rng):
        m = small_cnn(seed=7)
        ex = PipelineExecutor(m, lr=0.05, mode="pb")
        stats = ex.train(
            np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=int)
        )
        assert stats.samples == 0
        assert stats.time_steps == 0


class TestZeroStreamStats:
    """Regression pins for the degenerate streams: utilization and
    mean_loss must be *defined* (0.0 and NaN), not accidents of a 0/0
    or a fabricated one-step capacity."""

    @pytest.mark.parametrize("mode,kw", ALL_SCHEDULES)
    def test_empty_stream_every_schedule(self, mode, kw):
        m = small_cnn(seed=7)
        ex = PipelineExecutor(m, lr=0.05, mode=mode, **kw)
        stats = ex.train(np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=int))
        assert stats.samples == 0
        assert stats.time_steps == 0
        assert stats.forward_ops == 0 and stats.backward_ops == 0
        assert stats.utilization == 0.0
        assert np.isnan(stats.mean_loss)
        assert stats.updates_per_stage == [0] * m.num_stages
        # weights untouched by a run that saw no data
        ref = small_cnn(seed=7)
        assert max_param_diff(m, ref) == 0.0

    @pytest.mark.parametrize("mode,kw", ALL_SCHEDULES)
    def test_single_sample_every_schedule(self, rng, mode, kw):
        X = rng.normal(size=(1, 3, 8, 8))
        Y = rng.integers(0, 10, size=1)
        m = small_cnn(seed=7)
        ex = PipelineExecutor(m, lr=0.05, momentum=0.9, mode=mode, **kw)
        stats = ex.train(X, Y)
        assert stats.samples == 1
        assert np.isfinite(stats.losses[0])
        assert stats.mean_loss == pytest.approx(float(stats.losses[0]))
        assert 0.0 < stats.utilization <= 1.0
        assert all(s.updates_applied == 1 for s in ex.stages)
        assert all(s.in_flight == 0 for s in ex.stages)

    @pytest.mark.parametrize("mode,kw", ALL_SCHEDULES)
    def test_batch_smaller_than_micro_batch(self, rng, mode, kw):
        """n=2 with micro_batch_size=4 / update_size=4: one short packet
        drains and (for the synchronous schedules) averages over the 2
        samples actually seen."""
        n = 2
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m = small_cnn(seed=7)
        ex = PipelineExecutor(m, lr=0.05, momentum=0.9, mode=mode, **kw)
        stats = ex.train(X, Y)
        assert stats.samples == n
        assert np.all(np.isfinite(stats.losses))
        expected_updates = n if mode in ("pb", "1f1b") else 1
        assert all(
            s.updates_applied == expected_updates for s in ex.stages
        )
        if mode == "gpipe":
            # both samples rode one short packet, matching fill_drain's
            # averaged update exactly
            m_ref = small_cnn(seed=7)
            ref = SGDM(m_ref.parameters(), lr=0.05, momentum=0.9)
            loss = cross_entropy(m_ref(Tensor(X)), Y)
            ref.zero_grad()
            loss.backward()
            ref.step()
            assert max_param_diff(m, m_ref) < 1e-10

    def test_zero_step_stats_never_fabricate_capacity(self):
        """Direct construction: a zero-step record reports utilization
        0.0 even with nonzero op counts (the old ``max(time_steps, 1)``
        clamp invented one step of capacity)."""
        stats = PipelineRunStats(
            losses=np.zeros(0), time_steps=0, forward_ops=3,
            backward_ops=3, num_stages=5, samples=0,
        )
        assert stats.utilization == 0.0
        assert np.isnan(stats.mean_loss)

    def test_legacy_op_count_fallback_still_works(self):
        """Legacy records (op counts, no sample counts) keep their
        op-granularity utilization."""
        stats = PipelineRunStats(
            losses=np.zeros(4), time_steps=10, forward_ops=20,
            backward_ops=20, num_stages=2, samples=4,
        )
        assert stats.utilization == pytest.approx(40 / (2.0 * 2 * 10))


class TestNumericalHygiene:
    def test_losses_recorded_per_sample_in_order(self, rng):
        X = rng.normal(size=(6, 3, 8, 8))
        Y = rng.integers(0, 10, size=6)
        m = small_cnn(seed=7)
        stats = PipelineExecutor(m, lr=1e-6, mode="pb").train(X, Y)
        # with a negligible LR every loss equals the frozen-model loss
        frozen = [
            float(cross_entropy(m(Tensor(X[i : i + 1])), Y[i : i + 1]).data)
            for i in range(6)
        ]
        np.testing.assert_allclose(stats.losses, frozen, atol=1e-3)

    def test_weight_stash_restores_master_after_backward(self, rng):
        X = rng.normal(size=(10, 3, 8, 8))
        Y = rng.integers(0, 10, size=10)
        m = small_cnn(seed=7)
        ex = PipelineExecutor(
            m, lr=0.05, momentum=0.9, mode="pb",
            mitigation=MitigationConfig.stashing(),
        )
        ex.train(X, Y)
        # master weights are finite and the stash is empty
        assert all(np.all(np.isfinite(p.data)) for p in m.parameters())
        assert all(s.in_flight == 0 for s in ex.stages)


class TestReplicaStatsMerge:
    """Regression pins for per-replica stats aggregation: merging R
    replicas' records must sum *work* but never sum *capacity* — R
    identically-busy replicas report the same utilization and busy
    fractions as one, not R× (or 1/R of) it."""

    def _run_record(self, time_steps=10, replicas=1):
        return PipelineRunStats(
            losses=np.zeros(8), time_steps=time_steps, forward_ops=16,
            backward_ops=16, num_stages=2, samples=8,
            forward_samples=16, backward_samples=16, micro_batch=1,
            schedule="fill_drain", replicas=replicas,
        )

    def test_replicas_field_scales_capacity(self):
        """Direct construction: the same work over R=2 replicas' worth
        of worker-step capacity is half the utilization."""
        one = self._run_record()
        two = self._run_record(replicas=2)
        assert two.utilization == pytest.approx(one.utilization / 2)

    def test_merge_identical_records_keeps_utilization(self):
        """R identical replicas running concurrently: work doubles,
        time_steps stays max (not sum), replicas carries R — so
        utilization is unchanged, not doubled or halved."""
        parts = [self._run_record(), self._run_record()]
        merged = PipelineRunStats.merge_replicas(parts, np.zeros(16))
        assert merged.replicas == 2
        assert merged.time_steps == 10  # max, never sum
        assert merged.forward_samples == 32
        assert merged.samples == 16
        assert merged.utilization == pytest.approx(parts[0].utilization)

    def test_merge_uneven_records_uses_max_steps(self):
        """Uneven shards: the longer replica's steps set the shared
        wall capacity."""
        parts = [self._run_record(time_steps=10),
                 self._run_record(time_steps=7)]
        merged = PipelineRunStats.merge_replicas(parts, np.zeros(16))
        assert merged.time_steps == 10

    def test_merge_rejects_mismatched_records(self):
        other = PipelineRunStats(
            losses=np.zeros(8), time_steps=10, forward_ops=16,
            backward_ops=16, num_stages=3, samples=8,
            schedule="fill_drain",
        )
        with pytest.raises(ValueError, match="mismatched"):
            PipelineRunStats.merge_replicas(
                [self._run_record(), other], np.zeros(16)
            )
        with pytest.raises(ValueError, match="at least one"):
            PipelineRunStats.merge_replicas([], np.zeros(0))

    def test_runtime_stats_merge_busy_fractions(self):
        """RuntimeStats.merge_replicas: per-stage busy seconds sum
        across replicas but the per-stage time budget is wall * R, so
        two fully-busy replicas report busy_fraction 1.0 (the un-
        normalized merge would report 2.0)."""
        from repro.pipeline import RuntimeStats, StageRuntimeStats

        def record():
            return RuntimeStats(
                mode="free_running", schedule="fill_drain", num_stages=2,
                wall_seconds=2.0, backend="process",
                stages=[
                    StageRuntimeStats(
                        index=s, forward_ops=8, backward_ops=8,
                        forward_samples=8, backward_samples=8,
                        busy_seconds=2.0,
                    )
                    for s in range(2)
                ],
            )

        single = record()
        assert single.busy_fraction(0) == pytest.approx(1.0)
        merged = RuntimeStats.merge_replicas([record(), record()])
        assert merged.replicas == 2
        assert merged.wall_seconds == pytest.approx(2.0)  # max, not sum
        assert merged.stages[0].busy_seconds == pytest.approx(4.0)
        assert merged.stages[0].forward_samples == 16
        assert merged.busy_fraction(0) == pytest.approx(1.0)
        assert merged.idle_seconds(0) == pytest.approx(0.0)

    def test_runtime_stats_merge_rejects_mismatch(self):
        from repro.pipeline import RuntimeStats, StageRuntimeStats

        a = RuntimeStats(
            mode="free_running", schedule="fill_drain", num_stages=1,
            wall_seconds=1.0,
            stages=[StageRuntimeStats(index=0)],
        )
        b = RuntimeStats(
            mode="free_running", schedule="fill_drain", num_stages=2,
            wall_seconds=1.0,
            stages=[StageRuntimeStats(index=s) for s in range(2)],
        )
        with pytest.raises(ValueError):
            RuntimeStats.merge_replicas([a, b])
        with pytest.raises(ValueError):
            RuntimeStats.merge_replicas([])
