"""Synthetic data, augmentation, and loaders."""

import numpy as np
import pytest

from repro.data import (
    PadCropFlip,
    ResumableSampleStream,
    SyntheticCifar,
    SyntheticImageNet,
    iterate_batches,
    make_synthetic,
    sample_stream,
    shard_positions,
)


class TestSynthetic:
    def test_shapes(self):
        ds = make_synthetic(num_classes=5, image_size=12, train_size=64,
                            val_size=32, seed=0)
        assert ds.x_train.shape == (64, 3, 12, 12)
        assert ds.y_train.shape == (64,)
        assert ds.x_val.shape == (32, 3, 12, 12)
        assert ds.num_classes == 5
        assert set(np.unique(ds.y_train)) <= set(range(5))

    def test_deterministic_by_seed(self):
        a = make_synthetic(seed=3, train_size=16, val_size=8)
        b = make_synthetic(seed=3, train_size=16, val_size=8)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_seed_changes_data(self):
        a = make_synthetic(seed=3, train_size=16, val_size=8)
        b = make_synthetic(seed=4, train_size=16, val_size=8)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_presets(self):
        cifar = SyntheticCifar(seed=0, train_size=32, val_size=16)
        assert cifar.num_classes == 10 and cifar.image_shape == (3, 16, 16)
        inet = SyntheticImageNet(seed=0, train_size=32, val_size=16)
        assert inet.num_classes == 20 and inet.image_shape == (3, 32, 32)

    def test_classes_are_distinguishable(self):
        """Nearest-prototype classification must beat chance by a wide
        margin — otherwise training experiments are meaningless."""
        ds = make_synthetic(num_classes=4, image_size=8, train_size=256,
                            val_size=128, noise=0.5, seed=1)
        protos = np.stack([
            ds.x_train[ds.y_train == k].mean(axis=0) for k in range(4)
        ])
        flat = ds.x_val.reshape(len(ds.y_val), -1)
        dists = ((flat[:, None, :] - protos.reshape(4, -1)[None]) ** 2).sum(-1)
        acc = (dists.argmin(axis=1) == ds.y_val).mean()
        assert acc > 0.5  # chance is 0.25


class TestAugment:
    def test_shape_preserved(self, rng):
        aug = PadCropFlip(pad=2)
        x = rng.normal(size=(8, 3, 16, 16))
        out = aug(x, rng)
        assert out.shape == x.shape

    def test_zero_pad_no_flip_is_identity(self, rng):
        aug = PadCropFlip(pad=0, flip_p=0.0)
        x = rng.normal(size=(4, 3, 8, 8))
        np.testing.assert_array_equal(aug(x, rng), x)

    def test_flip_only_mirrors(self):
        aug = PadCropFlip(pad=0, flip_p=1.0)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = aug(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x[..., ::-1])

    def test_deterministic_given_rng(self, rng):
        x = rng.normal(size=(6, 3, 10, 10))
        a = PadCropFlip()(x, np.random.default_rng(5))
        b = PadCropFlip()(x, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            PadCropFlip(pad=-1)
        with pytest.raises(ValueError):
            PadCropFlip(flip_p=2.0)


class TestLoader:
    def test_batches_cover_epoch(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.arange(20)
        seen = []
        for xb, yb in iterate_batches(x, y, 4, rng=rng):
            assert xb.shape == (4, 2)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(20))

    def test_drop_last(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.arange(10)
        batches = list(iterate_batches(x, y, 4, rng=rng))
        assert len(batches) == 2
        batches = list(iterate_batches(x, y, 4, rng=rng, drop_last=False))
        assert len(batches) == 3

    def test_no_shuffle_keeps_order(self, rng):
        x = np.arange(8).reshape(8, 1).astype(float)
        y = np.arange(8)
        xb, yb = next(iterate_batches(x, y, 8, shuffle=False))
        np.testing.assert_array_equal(yb, np.arange(8))

    def test_shuffle_requires_rng(self, rng):
        with pytest.raises(ValueError):
            next(iterate_batches(np.zeros((4, 1)), np.zeros(4), 2))

    def test_sample_stream_length_and_epochs(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.arange(10)
        xs, ys = sample_stream(x, y, epochs=3, rng=rng)
        assert xs.shape == (30, 2)
        # each epoch is a complete permutation
        for e in range(3):
            assert sorted(ys[e * 10 : (e + 1) * 10].tolist()) == list(range(10))


class TestResumableSampleStream:
    """The lazy stream: eager equivalence + cursor resume semantics."""

    def _data(self, n=10, d=2, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), np.arange(n)

    def test_eager_lazy_equivalence(self):
        """The satellite contract: identical sequence for the same seed,
        with the eager helper as the reference implementation."""
        x, y = self._data()
        e_xs, e_ys = sample_stream(x, y, 3, np.random.default_rng(5))
        stream = ResumableSampleStream(x, y, 3, np.random.default_rng(5))
        l_xs, l_ys = stream.next_chunk(stream.total_samples)
        np.testing.assert_array_equal(e_xs, l_xs)
        np.testing.assert_array_equal(e_ys, l_ys)
        assert stream.exhausted

    def test_eager_lazy_equivalence_with_augmentation(self):
        """Augmentation draws from the same rng stream per epoch, so
        augmented sequences must match bit for bit too."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6, 3, 8, 8))
        y = np.arange(6)
        aug = PadCropFlip(pad=1)
        e_xs, e_ys = sample_stream(x, y, 2, np.random.default_rng(3),
                                   augment=aug)
        stream = ResumableSampleStream(x, y, 2, np.random.default_rng(3),
                                       augment=aug)
        l_xs, l_ys = stream.next_chunk(12)
        np.testing.assert_array_equal(e_xs, l_xs)
        np.testing.assert_array_equal(e_ys, l_ys)

    def test_chunked_consumption_matches_one_shot(self):
        x, y = self._data()
        one = ResumableSampleStream(x, y, 3, np.random.default_rng(5))
        xs1, ys1 = one.next_chunk(30)
        many = ResumableSampleStream(x, y, 3, np.random.default_rng(5))
        parts = [many.next_chunk(7) for _ in range(4)]
        parts.append(many.next_chunk(2))
        np.testing.assert_array_equal(
            xs1, np.concatenate([p[0] for p in parts])
        )
        np.testing.assert_array_equal(
            ys1, np.concatenate([p[1] for p in parts])
        )

    def test_cursor_positions(self):
        x, y = self._data()
        stream = ResumableSampleStream(x, y, 2, np.random.default_rng(0))
        assert (stream.position, stream.remaining) == (0, 20)
        stream.next_chunk(13)
        assert stream.position == 13
        assert (stream.epoch, stream.index) == (1, 3)
        stream.next_chunk(7)
        assert stream.exhausted
        with pytest.raises(ValueError, match="exhausted"):
            stream.next_chunk(1)

    def test_mid_epoch_resume_is_bit_exact(self):
        """cursor = (epoch, index, rng state): a fresh stream restored
        from a mid-epoch cursor replays the identical remainder."""
        x, y = self._data()
        s1 = ResumableSampleStream(x, y, 3, np.random.default_rng(5))
        s1.next_chunk(13)  # epoch 1, index 3
        cursor = s1.state_dict()
        rest1 = s1.next_chunk(17)

        s2 = ResumableSampleStream(x, y, 3, np.random.default_rng(999))
        s2.load_state_dict(cursor)
        assert (s2.epoch, s2.index) == (1, 3)
        rest2 = s2.next_chunk(17)
        np.testing.assert_array_equal(rest1[0], rest2[0])
        np.testing.assert_array_equal(rest1[1], rest2[1])

    def test_epoch_boundary_resume(self):
        x, y = self._data()
        s1 = ResumableSampleStream(x, y, 2, np.random.default_rng(5))
        s1.next_chunk(10)  # exactly one epoch
        cursor = s1.state_dict()
        assert (cursor["epoch"], cursor["index"]) == (1, 0)
        rest1 = s1.next_chunk(10)
        s2 = ResumableSampleStream(x, y, 2, np.random.default_rng(1))
        s2.load_state_dict(cursor)
        rest2 = s2.next_chunk(10)
        np.testing.assert_array_equal(rest1[0], rest2[0])

    def test_cursor_is_isolated_from_stream_progress(self):
        """A captured cursor is a snapshot: consuming more of the
        original stream must not mutate it."""
        x, y = self._data()
        s1 = ResumableSampleStream(x, y, 2, np.random.default_rng(5))
        s1.next_chunk(4)
        cursor = s1.state_dict()
        s1.next_chunk(9)
        assert cursor["index"] == 4 and cursor["epoch"] == 0
        s2 = ResumableSampleStream(x, y, 2, np.random.default_rng(2))
        s2.load_state_dict(cursor)
        assert s2.position == 4

    def test_only_current_epoch_in_memory(self):
        """The O(N)-not-O(epochs*N) contract the tentpole is about."""
        x, y = self._data()
        stream = ResumableSampleStream(
            x, y, 10_000, np.random.default_rng(0)
        )
        stream.next_chunk(5)
        assert stream._epoch_x.shape[0] == 10  # one epoch, not 10k
        assert stream.total_samples == 100_000

    def test_validation(self):
        x, y = self._data()
        with pytest.raises(ValueError, match="mismatch"):
            ResumableSampleStream(x, y[:-1], 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="empty"):
            ResumableSampleStream(
                np.zeros((0, 2)), np.zeros(0), 1, np.random.default_rng(0)
            )
        with pytest.raises(ValueError, match="epochs"):
            ResumableSampleStream(x, y, -1, np.random.default_rng(0))
        stream = ResumableSampleStream(x, y, 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="max_samples"):
            stream.next_chunk(0)

    def test_load_rejects_foreign_cursor(self):
        x, y = self._data()
        other_x, other_y = self._data(n=6)
        s1 = ResumableSampleStream(x, y, 1, np.random.default_rng(0))
        cursor = s1.state_dict()
        s2 = ResumableSampleStream(
            other_x, other_y, 1, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="samples/epoch"):
            s2.load_state_dict(cursor)
        bad = dict(cursor)
        bad["epoch"] = 5
        with pytest.raises(ValueError, match="epoch"):
            s1.load_state_dict(bad)


class TestShardPositions:
    """Block-cyclic shard index math: disjoint, covering, contiguous
    per global round — the layout the replicated pipeline's rank-order
    gradient reduction relies on."""

    @pytest.mark.parametrize("n", [1, 7, 12, 23, 48])
    @pytest.mark.parametrize("world", [1, 2, 3, 4])
    @pytest.mark.parametrize("block", [1, 2, 4])
    def test_disjoint_and_covering(self, n, world, block):
        parts = [
            shard_positions(n, rank, world, block) for rank in range(world)
        ]
        merged = np.concatenate(parts)
        assert len(merged) == n
        assert len(np.unique(merged)) == n  # disjoint
        np.testing.assert_array_equal(np.sort(merged), np.arange(n))

    def test_block_cyclic_layout(self):
        """Sample i belongs to (i // block) % world: rank r's share of
        each global round of world*block samples is one contiguous
        slice, and rank 0 always owns the earliest samples."""
        np.testing.assert_array_equal(
            shard_positions(10, 0, 2, block=2), [0, 1, 4, 5, 8, 9]
        )
        np.testing.assert_array_equal(
            shard_positions(10, 1, 2, block=2), [2, 3, 6, 7]
        )
        for n, world, block in [(10, 2, 2), (23, 3, 4)]:
            for rank in range(world):
                pos = shard_positions(n, rank, world, block)
                assert (pos // block % world == rank).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="world"):
            shard_positions(10, 0, 0)
        with pytest.raises(ValueError, match="rank"):
            shard_positions(10, 2, 2)
        with pytest.raises(ValueError, match="rank"):
            shard_positions(10, -1, 2)
        with pytest.raises(ValueError, match="block"):
            shard_positions(10, 0, 2, block=0)


class TestShardedSampleStream:
    """ResumableSampleStream.shard(): disjoint shard streams that agree
    on every epoch's permutation and resume mid-epoch bit-exactly."""

    def _data(self, n=10, d=2, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), np.arange(n)

    def test_shards_partition_the_stream(self):
        """Every epoch, the shards' sequences interleave back into
        exactly the unsharded stream (same permutation, same order)."""
        x, y = self._data()
        epochs, world, block = 3, 2, 2
        full = ResumableSampleStream(x, y, epochs, np.random.default_rng(5))
        parent = ResumableSampleStream(x, y, epochs, np.random.default_rng(5))
        shards = [parent.shard(r, world, block=block) for r in range(world)]

        f_xs, f_ys = full.next_chunk(full.total_samples)
        n = x.shape[0]
        for e in range(epochs):
            rebuilt_x = np.empty((n, x.shape[1]))
            rebuilt_y = np.empty(n, dtype=y.dtype)
            for r, s in enumerate(shards):
                pos = shard_positions(n, r, world, block)
                sx, sy = s.next_chunk(s.samples_per_epoch)
                rebuilt_x[pos] = sx
                rebuilt_y[pos] = sy
            np.testing.assert_array_equal(
                rebuilt_x, f_xs[e * n:(e + 1) * n]
            )
            np.testing.assert_array_equal(
                rebuilt_y, f_ys[e * n:(e + 1) * n]
            )
        assert all(s.exhausted for s in shards)

    def test_shard_sizes_and_cursor_count_local_samples(self):
        x, y = self._data(n=10)
        parent = ResumableSampleStream(x, y, 2, np.random.default_rng(5))
        s0 = parent.shard(0, 2, block=2)
        s1 = parent.shard(1, 2, block=2)
        assert s0.samples_per_epoch == 6
        assert s1.samples_per_epoch == 4
        assert s0.total_samples == 12
        s0.next_chunk(7)
        assert (s0.epoch, s0.index, s0.position) == (1, 1, 7)

    def test_mid_epoch_shard_resume_is_bit_exact(self):
        """The replicated DurableRun contract: a fresh shard stream
        restored from a mid-epoch cursor replays the identical
        remainder of the shard's sequence."""
        x, y = self._data()
        parent = ResumableSampleStream(x, y, 3, np.random.default_rng(5))
        s1 = parent.shard(1, 2, block=2)
        s1.next_chunk(5)  # mid-epoch (4 per epoch for this shard)
        cursor = s1.state_dict()
        rest1 = s1.next_chunk(s1.remaining)

        parent2 = ResumableSampleStream(x, y, 3, np.random.default_rng(999))
        s2 = parent2.shard(1, 2, block=2)
        s2.load_state_dict(cursor)
        assert (s2.epoch, s2.index, s2.position) == (1, 1, 5)
        rest2 = s2.next_chunk(s2.remaining)
        np.testing.assert_array_equal(rest1[0], rest2[0])
        np.testing.assert_array_equal(rest1[1], rest2[1])

    def test_cursor_shard_identity_is_checked(self):
        x, y = self._data()

        def shard(rank, world, block, seed=5):
            parent = ResumableSampleStream(
                x, y, 2, np.random.default_rng(seed)
            )
            return parent.shard(rank, world, block=block)

        cursor = shard(0, 2, 2).state_dict()
        with pytest.raises(ValueError, match="shard"):
            shard(1, 2, 2).load_state_dict(cursor)
        with pytest.raises(ValueError, match="shard"):
            shard(0, 2, 1).load_state_dict(cursor)
        # an unsharded cursor cannot restore a shard...
        plain = ResumableSampleStream(x, y, 2, np.random.default_rng(5))
        with pytest.raises(ValueError, match="unsharded"):
            shard(0, 2, 2).load_state_dict(plain.state_dict())
        # ...and a shard cursor carries the shard key, so the plain
        # stream's strict loader refuses it too
        with pytest.raises(ValueError):
            plain.load_state_dict(cursor)

    def test_shard_guards(self):
        x, y = self._data(n=4)
        parent = ResumableSampleStream(x, y, 1, np.random.default_rng(0))
        # empty shard: rank 1 of world 2 with block 4 owns nothing of 4
        with pytest.raises(ValueError, match="empty"):
            parent.shard(1, 2, block=4)
        with pytest.raises(ValueError, match="rank"):
            parent.shard(2, 2)
        consumed = ResumableSampleStream(x, y, 1, np.random.default_rng(0))
        consumed.next_chunk(1)
        with pytest.raises(ValueError, match="unconsumed"):
            consumed.shard(0, 2)

    def test_shard_with_augmentation_matches_unsharded(self):
        """Augmentation consumes the rng after the permutation; shards
        replay the full-epoch augmentation so their samples are bit-
        identical to the unsharded stream's at the same positions."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6, 3, 8, 8))
        y = np.arange(6)
        aug = PadCropFlip(pad=1)
        full = ResumableSampleStream(
            x, y, 2, np.random.default_rng(3), augment=aug
        )
        parent = ResumableSampleStream(
            x, y, 2, np.random.default_rng(3), augment=aug
        )
        f_xs, f_ys = full.next_chunk(12)
        for r in range(2):
            s = parent.shard(r, 2, block=1)
            sx, sy = s.next_chunk(s.total_samples)
            pos = shard_positions(6, r, 2, 1)
            want = np.concatenate([f_xs[pos], f_xs[pos + 6]])
            np.testing.assert_array_equal(sx, want)
            np.testing.assert_array_equal(
                sy, np.concatenate([f_ys[pos], f_ys[pos + 6]])
            )
