"""Synthetic data, augmentation, and loaders."""

import numpy as np
import pytest

from repro.data import (
    PadCropFlip,
    SyntheticCifar,
    SyntheticImageNet,
    iterate_batches,
    make_synthetic,
    sample_stream,
)


class TestSynthetic:
    def test_shapes(self):
        ds = make_synthetic(num_classes=5, image_size=12, train_size=64,
                            val_size=32, seed=0)
        assert ds.x_train.shape == (64, 3, 12, 12)
        assert ds.y_train.shape == (64,)
        assert ds.x_val.shape == (32, 3, 12, 12)
        assert ds.num_classes == 5
        assert set(np.unique(ds.y_train)) <= set(range(5))

    def test_deterministic_by_seed(self):
        a = make_synthetic(seed=3, train_size=16, val_size=8)
        b = make_synthetic(seed=3, train_size=16, val_size=8)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_seed_changes_data(self):
        a = make_synthetic(seed=3, train_size=16, val_size=8)
        b = make_synthetic(seed=4, train_size=16, val_size=8)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_presets(self):
        cifar = SyntheticCifar(seed=0, train_size=32, val_size=16)
        assert cifar.num_classes == 10 and cifar.image_shape == (3, 16, 16)
        inet = SyntheticImageNet(seed=0, train_size=32, val_size=16)
        assert inet.num_classes == 20 and inet.image_shape == (3, 32, 32)

    def test_classes_are_distinguishable(self):
        """Nearest-prototype classification must beat chance by a wide
        margin — otherwise training experiments are meaningless."""
        ds = make_synthetic(num_classes=4, image_size=8, train_size=256,
                            val_size=128, noise=0.5, seed=1)
        protos = np.stack([
            ds.x_train[ds.y_train == k].mean(axis=0) for k in range(4)
        ])
        flat = ds.x_val.reshape(len(ds.y_val), -1)
        dists = ((flat[:, None, :] - protos.reshape(4, -1)[None]) ** 2).sum(-1)
        acc = (dists.argmin(axis=1) == ds.y_val).mean()
        assert acc > 0.5  # chance is 0.25


class TestAugment:
    def test_shape_preserved(self, rng):
        aug = PadCropFlip(pad=2)
        x = rng.normal(size=(8, 3, 16, 16))
        out = aug(x, rng)
        assert out.shape == x.shape

    def test_zero_pad_no_flip_is_identity(self, rng):
        aug = PadCropFlip(pad=0, flip_p=0.0)
        x = rng.normal(size=(4, 3, 8, 8))
        np.testing.assert_array_equal(aug(x, rng), x)

    def test_flip_only_mirrors(self):
        aug = PadCropFlip(pad=0, flip_p=1.0)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = aug(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x[..., ::-1])

    def test_deterministic_given_rng(self, rng):
        x = rng.normal(size=(6, 3, 10, 10))
        a = PadCropFlip()(x, np.random.default_rng(5))
        b = PadCropFlip()(x, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            PadCropFlip(pad=-1)
        with pytest.raises(ValueError):
            PadCropFlip(flip_p=2.0)


class TestLoader:
    def test_batches_cover_epoch(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.arange(20)
        seen = []
        for xb, yb in iterate_batches(x, y, 4, rng=rng):
            assert xb.shape == (4, 2)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(20))

    def test_drop_last(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.arange(10)
        batches = list(iterate_batches(x, y, 4, rng=rng))
        assert len(batches) == 2
        batches = list(iterate_batches(x, y, 4, rng=rng, drop_last=False))
        assert len(batches) == 3

    def test_no_shuffle_keeps_order(self, rng):
        x = np.arange(8).reshape(8, 1).astype(float)
        y = np.arange(8)
        xb, yb = next(iterate_batches(x, y, 8, shuffle=False))
        np.testing.assert_array_equal(yb, np.arange(8))

    def test_shuffle_requires_rng(self, rng):
        with pytest.raises(ValueError):
            next(iterate_batches(np.zeros((4, 1)), np.zeros(4), 2))

    def test_sample_stream_length_and_epochs(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.arange(10)
        xs, ys = sample_stream(x, y, epochs=3, rng=rng)
        assert xs.shape == (30, 2)
        # each epoch is a complete permutation
        for e in range(3):
            assert sorted(ys[e * 10 : (e + 1) * 10].tolist()) == list(range(10))
