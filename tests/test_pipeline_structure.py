"""Delays, schedules, utilization formulas, and stage-graph validation."""

import numpy as np
import pytest

from repro.core.staleness import PerParamDelay
from repro.models import resnet_tiny, small_cnn, vgg_tiny
from repro.models.arch import StageDef
from repro.nn import ReLU
from repro.pipeline import (
    fill_drain_utilization,
    max_pipeline_delay,
    pb_occupancy,
    pb_utilization,
    pipeline_delay_profile,
    render_occupancy,
    schedule_utilization,
    stage_delay,
    stage_delay_table,
    stage_flow_graph,
    utilization_upper_bound,
    validate_stage_graph,
)
from repro.pipeline.schedule import fill_drain_occupancy, observed_stage_delays


class TestDelayLaw:
    def test_last_stage_zero_delay(self):
        assert stage_delay(9, 10) == 0

    def test_first_stage_max_delay(self):
        assert stage_delay(0, 10) == 18

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            stage_delay(10, 10)

    def test_max_pipeline_delay(self):
        m = small_cnn()
        assert max_pipeline_delay(m) == 2 * (m.num_stages - 1)

    def test_profile_covers_all_params(self):
        m = resnet_tiny()
        profile = pipeline_delay_profile(m)
        assert isinstance(profile, PerParamDelay)
        assert set(profile.mapping) == {id(p) for p in m.parameters()}

    def test_profile_batch_scaling(self):
        m = small_cnn()
        p1 = pipeline_delay_profile(m, sim_batch_size=1)
        p8 = pipeline_delay_profile(m, sim_batch_size=8)
        for pid in p1.mapping:
            assert p8.mapping[pid] == int(round(p1.mapping[pid] / 8))

    def test_delay_table(self):
        m = small_cnn()
        rows = stage_delay_table(m)
        assert len(rows) == m.num_stages
        assert rows[-1]["delay"] == 0
        assert rows[0]["delay"] == 2 * (m.num_stages - 1)


class TestSchedules:
    def test_pb_occupancy_observed_delays(self):
        occ = pb_occupancy(num_stages=6, num_samples=20)
        assert observed_stage_delays(occ) == [2 * (6 - 1 - s) for s in range(6)]

    def test_pb_steady_state_full_utilization(self):
        occ = pb_occupancy(num_stages=4, num_samples=400)
        # interior columns (after fill, before drain) are fully busy
        interior = occ.grid[:, 8:-8]
        assert np.all(interior == 3)  # BOTH

    def test_pb_utilization_matches_formula(self):
        S, n = 5, 100
        occ = pb_occupancy(S, n)
        assert schedule_utilization(occ) == pytest.approx(pb_utilization(S, n))

    def test_fill_drain_utilization_matches_formula(self):
        S, N = 7, 4
        occ = fill_drain_occupancy(S, N, num_batches=3)
        assert schedule_utilization(occ) == pytest.approx(
            fill_drain_utilization(S, N)
        )

    def test_eq1_upper_bound_is_above_exact(self):
        for S in [2, 10, 50]:
            for N in [1, 8, 128]:
                assert fill_drain_utilization(S, N) >= utilization_upper_bound(
                    S, N
                ) - 1e-12

    def test_large_batch_beats_small_batch(self):
        """Figure 2 top vs middle: larger batches fill the pipeline better."""
        assert fill_drain_utilization(20, 128) > fill_drain_utilization(20, 4)

    def test_pb_beats_fill_drain(self):
        """Figure 2 bottom: PB over a long stream beats any fill/drain batch."""
        assert pb_utilization(20, 10_000) > fill_drain_utilization(20, 128)

    def test_render(self):
        occ = pb_occupancy(3, 5)
        text = render_occupancy(occ)
        assert "stage   0" in text and "F" in text and "B" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization_upper_bound(0, 1)
        with pytest.raises(ValueError):
            fill_drain_utilization(1, 0)


class TestStageGraphValidation:
    def test_models_validate(self):
        for model in [small_cnn(), resnet_tiny(), vgg_tiny()]:
            validate_stage_graph(model.stage_defs)

    def test_sum_without_push_rejected(self):
        stages = [
            StageDef("a", module=ReLU()),
            StageDef("s", kind="sum"),
            StageDef("loss", kind="loss"),
        ]
        with pytest.raises(ValueError, match="empty stack"):
            validate_stage_graph(stages)

    def test_unbalanced_push_rejected(self):
        stages = [
            StageDef("a", module=ReLU(), push_skip="input"),
            StageDef("loss", kind="loss"),
        ]
        with pytest.raises(ValueError, match="unconsumed"):
            validate_stage_graph(stages)

    def test_missing_loss_rejected(self):
        with pytest.raises(ValueError):
            validate_stage_graph([StageDef("a", module=ReLU())])

    def test_skip_channel_on_empty_stack_rejected(self):
        stages = [
            StageDef("a", module=ReLU(), channel=-1),
            StageDef("loss", kind="loss"),
        ]
        with pytest.raises(ValueError, match="empty skip stack"):
            validate_stage_graph(stages)

    def test_flow_graph_structure(self):
        import networkx as nx

        m = resnet_tiny(blocks_per_group=1)
        g = stage_flow_graph(m)
        assert g.number_of_nodes() == m.num_stages
        assert nx.is_directed_acyclic_graph(g)
        # skip edges exist (one per block + downsample routing)
        skip_edges = [
            e for e in g.edges(data=True) if e[2]["channel"] == "skip"
        ]
        assert len(skip_edges) >= 3
        # every non-terminal node reaches the loss stage
        loss = m.num_stages - 1
        for node in g.nodes:
            assert nx.has_path(g, node, loss)
