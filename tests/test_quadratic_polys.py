"""Characteristic polynomials and root analysis (eqs. 28-31)."""

import numpy as np
import pytest

from repro.core.compensation import spike_coefficients
from repro.quadratic import (
    GDM,
    NESTEROV,
    characteristic_coefficients,
    combined_method,
    dominant_root,
    lwp_method,
    rate_grid,
    sc_method,
)
from repro.quadratic.roots import (
    default_eta_lambda_grid,
    default_momentum_grid,
    stability_mask,
)


class TestCoefficients:
    def test_plain_gd_root(self):
        """D=0, m=0: GD root is 1 - eta*lambda."""
        for el in [0.1, 0.5, 1.5]:
            r = dominant_root(characteristic_coefficients(el, 0.0, 0))
            assert r == pytest.approx(abs(1.0 - el), abs=1e-10)

    def test_gd_stability_boundary(self):
        """GD diverges iff eta*lambda > 2."""
        assert dominant_root(characteristic_coefficients(1.99, 0.0, 0)) < 1.0
        assert dominant_root(characteristic_coefficients(2.01, 0.0, 0)) > 1.0

    def test_momentum_roots_no_delay(self):
        """GDM D=0 roots solve z^2 - (1+m-el) z + m = 0."""
        el, m = 0.05, 0.9
        coeffs = characteristic_coefficients(el, m, 0)
        roots = np.roots(np.trim_zeros(coeffs, "b") if coeffs[-1] == 0 else coeffs)
        # compare against the classical 2nd-order momentum polynomial
        ref = np.roots([1.0, -(1.0 + m - el), m])
        got = sorted(np.abs(roots)[np.abs(roots) > 1e-12])[-2:]
        expect = sorted(np.abs(ref))
        np.testing.assert_allclose(sorted(got), sorted(expect), atol=1e-10)

    def test_heavy_ball_optimal_rate(self):
        """At the optimal momentum for a single eigenvalue the rate is
        sqrt(m) (complex conjugate roots on the circle of radius sqrt(m))."""
        el = 0.5
        m = (1 - np.sqrt(el)) ** 2 / 1.0  # for lambda*eta = el, optimum
        r = dominant_root(characteristic_coefficients(el, m, 0))
        assert r == pytest.approx(np.sqrt(m), abs=1e-8)

    def test_delay_increases_degree(self):
        assert characteristic_coefficients(0.1, 0.9, 0).size == 4
        assert characteristic_coefficients(0.1, 0.9, 5).size == 9

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            characteristic_coefficients(0.1, 0.9, -1)

    def test_index_collisions_handled_at_small_delay(self):
        """For D=0 the gradient terms overlap the momentum terms; the
        builder must *add* contributions (z^1 coefficient mixes both)."""
        el, m, a, b, T = 0.2, 0.9, 0.8, 1.5, 2.0
        c = characteristic_coefficients(el, m, 0, a=a, b=b, T=T)
        assert c[1] == pytest.approx(-(1 + m) + el * (a + b) * (T + 1))


class TestEquivalences:
    def test_nesterov_equals_scd_at_delay_one(self):
        for el in [1e-4, 1e-2, 0.5]:
            for m in [0.3, 0.9, 0.999]:
                a, b = spike_coefficients(m, 1)
                r1 = dominant_root(
                    characteristic_coefficients(el, m, 1, a=m, b=1.0)
                )
                r2 = dominant_root(
                    characteristic_coefficients(el, m, 1, a=a, b=b)
                )
                assert r1 == pytest.approx(r2, abs=1e-10)

    def test_gsc_equivalent_to_lwp_under_eq44_45(self):
        """a+b = 1+T and m*b = T (eqs. 44-45) make GSC and LWP identical
        for the linear (quadratic-loss) gradient."""
        m, D, el = 0.9, 3, 0.01
        T = 2.0
        b = T / m
        a = 1.0 + T - b
        r_gsc = dominant_root(characteristic_coefficients(el, m, D, a=a, b=b))
        r_lwp = dominant_root(
            characteristic_coefficients(el, m, D, a=1.0, b=0.0, T=T)
        )
        assert r_gsc == pytest.approx(r_lwp, abs=1e-10)

    def test_scd_equals_lwp_with_eq46_horizon(self):
        """SC_D == LWP with T = m (1-m^D)/(1-m) (eq. 46)."""
        m, D, el = 0.9, 4, 0.005
        a, b = spike_coefficients(m, D)
        T = m * (1 - m**D) / (1 - m)
        r_sc = dominant_root(characteristic_coefficients(el, m, D, a=a, b=b))
        r_lwp = dominant_root(
            characteristic_coefficients(el, m, D, a=1.0, b=0.0, T=T)
        )
        assert r_sc == pytest.approx(r_lwp, abs=1e-10)

    def test_lwp_zero_horizon_is_gdm(self):
        m, D, el = 0.8, 3, 0.02
        r1 = dominant_root(characteristic_coefficients(el, m, D))
        r2 = dominant_root(
            characteristic_coefficients(el, m, D, a=1.0, b=0.0, T=0.0)
        )
        assert r1 == pytest.approx(r2, abs=1e-12)

    def test_combined_not_reachable_by_either_alone(self):
        """The combination's polynomial has a w_{t-D-2} term (App. D): it
        differs from every pure-GSC and pure-LWP configuration here."""
        m, D, el = 0.9, 2, 0.05
        a, b = spike_coefficients(m, D)
        c_combo = characteristic_coefficients(el, m, D, a=a, b=b, T=D)
        assert c_combo[-1] != 0.0  # the z^0 term only the combo produces


class TestMethodSpecs:
    def test_registry_methods_produce_valid_roots(self):
        from repro.quadratic.polynomials import METHOD_REGISTRY

        for name, spec in METHOD_REGISTRY.items():
            r = dominant_root(spec.coefficients(1e-3, 0.9, 2))
            assert np.isfinite(r) and r > 0, name

    def test_delay_override(self):
        from repro.quadratic.polynomials import GDM_NO_DELAY

        r0 = dominant_root(GDM_NO_DELAY.coefficients(0.05, 0.9, 5))
        r_direct = dominant_root(characteristic_coefficients(0.05, 0.9, 0))
        assert r0 == pytest.approx(r_direct, abs=1e-12)

    def test_rate_grid_shape_and_monotone_stability(self):
        els = default_eta_lambda_grid(points_per_decade=2)
        ms = default_momentum_grid(points_per_decade=2)
        grid = rate_grid(GDM, 1, els, ms)
        assert grid.shape == (ms.size, els.size)
        mask = stability_mask(grid)
        # tiny eta*lambda is always stable (just slow)
        assert mask[:, 0].all()

    def test_delay_shrinks_stable_region(self):
        """Figure 4: delay blacks out part of the (el, m) plane."""
        els = np.logspace(-4, 0, 12)
        ms = np.array([0.0, 0.9, 0.99])
        area_d0 = stability_mask(rate_grid(GDM, 0, els, ms)).sum()
        area_d4 = stability_mask(rate_grid(GDM, 4, els, ms)).sum()
        assert area_d4 < area_d0

    def test_sc_extends_stability_over_gdm_high_momentum(self):
        """Figure 4: SC_D allows larger learning rates at high momentum."""
        els = np.logspace(-4, 0, 24)
        ms = np.array([0.99])
        gdm_stable = stability_mask(rate_grid(GDM, 1, els, ms)).sum()
        sc_stable = stability_mask(rate_grid(sc_method(), 1, els, ms)).sum()
        assert sc_stable >= gdm_stable

    def test_method_names(self):
        assert sc_method().name == "SC_D"
        assert sc_method(2.0).name == "SC_2D"
        assert lwp_method(2.0).name == "LWP_2D"
        assert lwp_method(horizon=5.0).name == "LWP T=5"
        assert combined_method().name == "LWPw_D+SC_D"
        assert NESTEROV.name == "Nesterov"
