"""Spike compensation, weight prediction, mitigation configs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MitigationConfig,
    PredictionConfig,
    SpikeConfig,
    predict_velocity_form,
    predict_weight_diff_form,
    spike_coefficients,
)

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


class TestSpikeCoefficients:
    def test_zero_delay_is_plain_sgdm(self):
        assert spike_coefficients(0.9, 0) == (1.0, 0.0)

    def test_delay_one_is_nesterov(self):
        """SC_D at D=1 gives (a, b) = (m, 1) — exactly Nesterov (§3.5)."""
        for m in [0.1, 0.5, 0.9, 0.999]:
            a, b = spike_coefficients(m, 1)
            assert a == pytest.approx(m)
            assert b == pytest.approx(1.0)

    def test_zero_momentum(self):
        assert spike_coefficients(0.0, 0) == (1.0, 0.0)
        assert spike_coefficients(0.0, 5) == (0.0, 1.0)

    def test_formula(self):
        m, d = 0.9, 4
        a, b = spike_coefficients(m, d)
        assert a == pytest.approx(m**4)
        assert b == pytest.approx((1 - m**4) / (1 - m))

    @given(st.floats(0.0, 0.999), st.integers(0, 50))
    def test_total_contribution_preserved(self, m, d):
        """a/(1-m) + b == 1/(1-m): SC only moves a gradient's contribution
        in time, never changes its total (paper §3.2)."""
        a, b = spike_coefficients(m, d)
        denom = 1.0 - m if m < 1.0 else 1.0
        lhs = a / denom + b
        assert lhs == pytest.approx(1.0 / denom, rel=1e-9)

    def test_fractional_delay_for_overcompensation(self):
        a, b = spike_coefficients(0.9, 2.5)
        assert a == pytest.approx(0.9**2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            spike_coefficients(1.0, 1)
        with pytest.raises(ValueError):
            spike_coefficients(0.9, -1)


class TestSpikeConfig:
    def test_default_scale(self):
        cfg = SpikeConfig()
        assert cfg.coefficients(0.9, 3) == spike_coefficients(0.9, 3)

    def test_scale_two_is_sc2d(self):
        cfg = SpikeConfig(scale=2.0)
        assert cfg.coefficients(0.9, 3) == spike_coefficients(0.9, 6)

    def test_explicit_gsc(self):
        cfg = SpikeConfig(a=0.3, b=1.7)
        assert cfg.coefficients(0.9, 100) == (0.3, 1.7)

    def test_partial_explicit_raises(self):
        with pytest.raises(ValueError):
            SpikeConfig(a=0.5).coefficients(0.9, 1)


class TestPrediction:
    def test_velocity_form(self, rng):
        w = rng.normal(size=5)
        v = rng.normal(size=5)
        np.testing.assert_allclose(
            predict_velocity_form(w, v, lr=0.1, horizon=3),
            w - 0.3 * v,
        )

    def test_weight_diff_form(self, rng):
        w = rng.normal(size=5)
        wp = rng.normal(size=5)
        np.testing.assert_allclose(
            predict_weight_diff_form(w, wp, horizon=2), w + 2 * (w - wp)
        )

    def test_zero_horizon_copies(self, rng):
        w = rng.normal(size=3)
        out = predict_velocity_form(w, rng.normal(size=3), 0.1, 0.0)
        np.testing.assert_array_equal(out, w)
        out[:] = 0  # must not alias w
        assert not np.array_equal(out, w)

    def test_forms_agree_for_sgdm_step(self, rng):
        """w_t - w_{t-1} = -lr * v_t for SGDM, so eq. 18 == eq. 19."""
        lr = 0.05
        v_t = rng.normal(size=4)
        w_t = rng.normal(size=4)
        w_prev = w_t + lr * v_t
        T = 3.0
        np.testing.assert_allclose(
            predict_velocity_form(w_t, v_t, lr, T),
            predict_weight_diff_form(w_t, w_prev, T),
            atol=1e-12,
        )

    def test_horizon_resolution(self):
        assert PredictionConfig("lwp_v").forward_horizon(4) == 4.0
        assert PredictionConfig("lwp_v", horizon_scale=2).forward_horizon(4) == 8.0
        assert PredictionConfig("lwp_v", horizon=7.0).forward_horizon(100) == 7.0
        assert PredictionConfig("none").forward_horizon(10) == 0.0

    def test_spectrain_horizons(self):
        cfg = PredictionConfig("spectrain", spectrain_offset=3.0)
        assert cfg.forward_horizon(4) == 7.0  # D + offset
        assert cfg.backward_horizon() == 3.0
        assert cfg.forward_horizon(4, offset=5.0) == 9.0
        assert cfg.backward_horizon(offset=5.0) == 5.0

    def test_lwp_backward_horizon_zero(self):
        assert PredictionConfig("lwp_v").backward_horizon() == 0.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            PredictionConfig("magic")


class TestMitigationConfig:
    def test_presets_have_expected_flags(self):
        assert MitigationConfig.none().spike is None
        assert MitigationConfig.sc().spike is not None
        assert MitigationConfig.lwp().prediction.kind == "lwp_v"
        assert MitigationConfig.lwp("w").prediction.kind == "lwp_w"
        combo = MitigationConfig.lwp_plus_sc()
        assert combo.spike is not None and combo.prediction.kind == "lwp_v"
        assert MitigationConfig.stashing().weight_stashing is True
        assert MitigationConfig.spectrain().prediction.kind == "spectrain"

    def test_weight_stashing_field_is_bool(self):
        """Regression: the `stashing` preset must not shadow the
        `weight_stashing` dataclass field (a staticmethod once did)."""
        cfg = MitigationConfig.none()
        assert cfg.weight_stashing is False
        assert isinstance(MitigationConfig().weight_stashing, bool)

    def test_spike_coefficients_default_when_disabled(self):
        assert MitigationConfig.none().spike_coefficients(0.9, 10) == (1.0, 0.0)

    def test_gradient_shrinking_uses_momentum_by_default(self):
        cfg = MitigationConfig.gradient_shrinking()
        assert cfg.shrink_factor(0.9, 2) == pytest.approx(0.81)
        cfg2 = MitigationConfig.gradient_shrinking(base=0.5)
        assert cfg2.shrink_factor(0.9, 2) == pytest.approx(0.25)

    def test_shrink_disabled_returns_one(self):
        assert MitigationConfig.none().shrink_factor(0.9, 10) == 1.0

    def test_names(self):
        assert MitigationConfig.sc().name == "PB+SC_D"
        assert MitigationConfig.sc(2.0).name == "PB+SC_2D"
        assert MitigationConfig.lwp(scale=2.0).name == "PB+LWP_2D"
        assert "LWPv" in MitigationConfig.lwp_plus_sc().name
