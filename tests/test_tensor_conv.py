"""Convolution and pooling: values vs naive reference, gradients, adjoints."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    col2im,
    conv2d,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Direct-loop cross-correlation used as the gold reference."""
    n, c, h, ww = x.shape
    oc, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = x[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0), (3, 2)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        ours = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = naive_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(ours.data, ref, atol=1e-10)

    def test_1x1_conv(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(6, 4, 1, 1))
        ours = conv2d(Tensor(x), Tensor(w))
        ref = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(ours.data, ref, atol=1e-10)

    def test_7x7_stride2_stem(self, rng):
        x = rng.normal(size=(1, 3, 16, 16))
        w = rng.normal(size=(8, 3, 7, 7))
        ours = conv2d(Tensor(x), Tensor(w), stride=2, padding=3)
        ref = naive_conv2d(x, w, stride=2, padding=3)
        assert ours.shape == (1, 8, 8, 8)
        np.testing.assert_allclose(ours.data, ref, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(rng.normal(size=(1, 3, 5, 5))),
                   Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(rng.normal(size=(1, 1, 2, 2))),
                   Tensor(rng.normal(size=(1, 1, 5, 5))))


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_gradcheck(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.normal(size=3) * 0.1, requires_grad=True)
        check_gradients(
            lambda x, w, b: (conv2d(x, w, b, stride=stride, padding=padding) ** 2).sum(),
            [x, w, b],
        )

    def test_im2col_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the transpose relationship."""
        x = rng.normal(size=(2, 3, 6, 6))
        kh = kw = 3
        stride = 1
        cols = im2col(x, kh, kw, stride)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kh, kw, stride)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 2)
        assert cols.shape == (2, 27, 9)


class TestPooling:
    def test_max_pool_values(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = max_pool2d(Tensor(x), 2)
        ref = x.reshape(1, 1, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, ref)

    def test_avg_pool_values(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        out = avg_pool2d(Tensor(x), 3)
        ref = x.reshape(2, 3, 2, 3, 2, 3).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, ref)

    def test_max_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda x: (max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda x: (avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(
            np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True
        )
        out = max_pool2d(x, 2)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(
            x.grad, np.array([[[[0.0, 0.0], [0.0, 1.0]]]])
        )

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            max_pool2d(Tensor(rng.normal(size=(1, 1, 5, 5))), 2)
