"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list_mode(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "table1" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "paper:" in out

    def test_save_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["fig02", "--save"]) == 0
        assert (tmp_path / "fig02.json").exists()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_scale_flag(self, capsys):
        assert main(["fig02", "--scale", "bench"]) == 0
