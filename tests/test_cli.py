"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list_mode(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "table1" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "paper:" in out

    def test_save_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["fig02", "--save"]) == 0
        assert (tmp_path / "fig02.json").exists()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_scale_flag(self, capsys):
        assert main(["fig02", "--scale", "bench"]) == 0


class TestScheduleFlag:
    def test_schedule_flag_restricts_comparison(self, capsys):
        assert main(["schedule_comparison", "--schedule", "gpipe"]) == 0
        out = capsys.readouterr().out
        assert "gpipe" in out
        assert "utilization" in out
        # restricted to the one schedule: the others don't appear as rows
        assert "fill_drain" not in out

    def test_schedule_flag_lists_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["schedule_comparison", "--schedule", "magic"])
        err = capsys.readouterr().err
        assert "1f1b" in err

    def test_schedule_flag_rejected_by_other_experiments(self):
        with pytest.raises(ValueError):
            main(["fig02", "--schedule", "pb"])


class TestRuntimeFlag:
    @pytest.mark.concurrency
    def test_runtime_flag_threads_schedule_comparison(self, capsys):
        assert main(
            ["schedule_comparison", "--runtime", "threaded",
             "--schedule", "gpipe"]
        ) == 0
        out = capsys.readouterr().out
        assert "gpipe" in out and "utilization" in out

    def test_runtime_flag_lists_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["schedule_comparison", "--runtime", "warp-drive"])
        err = capsys.readouterr().err
        assert "threaded" in err

    def test_runtime_flag_rejected_by_other_experiments(self):
        with pytest.raises(ValueError):
            main(["fig02", "--runtime", "threaded"])
