"""Model zoo: the paper's stage counts, forward shapes, stage semantics."""

import numpy as np
import pytest

from repro.models import (
    MODEL_BUILDERS,
    PAPER_STAGE_COUNTS,
    StageDef,
    StageGraphModel,
    build_model,
    mlp,
    resnet20,
    resnet50_tiny,
    resnet_tiny,
    small_cnn,
    vgg_tiny,
)
from repro.nn import Linear, ReLU
from repro.tensor import Tensor, cross_entropy


class TestPaperStageCounts:
    """Table 1 (and §4 for ResNet50): exact stage counts."""

    @pytest.mark.parametrize("name,expected", sorted(PAPER_STAGE_COUNTS.items()))
    def test_stage_count(self, name, expected):
        model = build_model(name)
        assert model.num_stages == expected

    def test_cifar_resnet_formula(self):
        """CIFAR ResNets: stages = 3 * blocks + 7."""
        for bpg, depth in [(3, 20), (5, 32), (7, 44), (9, 56), (18, 110)]:
            model = build_model(f"rn{depth}")
            assert model.num_stages == 3 * (3 * bpg) + 7

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")


class TestForwardShapes:
    def test_resnet_tiny(self, rng):
        m = resnet_tiny(num_classes=7)
        out = m(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 7)

    def test_resnet20_full_size(self, rng):
        m = resnet20()
        out = m(Tensor(rng.normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 10)

    def test_vgg_tiny(self, rng):
        m = vgg_tiny(num_classes=5)
        out = m(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 5)

    def test_resnet50_tiny(self, rng):
        m = resnet50_tiny(num_classes=6)
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 6)

    def test_small_cnn_backward(self, rng):
        m = small_cnn(num_classes=4, widths=(4, 8))
        loss = cross_entropy(
            m(Tensor(rng.normal(size=(3, 3, 8, 8)))), np.array([0, 1, 2])
        )
        loss.backward()
        assert all(p.grad is not None for p in m.parameters())

    def test_mlp(self, rng):
        m = mlp(10, 3, hidden=(8,))
        out = m(Tensor(rng.normal(size=(4, 10))))
        assert out.shape == (4, 3)

    def test_seed_changes_weights(self):
        a = resnet_tiny(seed=0)
        b = resnet_tiny(seed=1)
        assert not np.array_equal(
            a.parameters()[0].data, b.parameters()[0].data
        )

    def test_same_seed_same_weights(self):
        a, b = resnet_tiny(seed=5), resnet_tiny(seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestStageGraphSemantics:
    def test_residual_identity_block_math(self, rng):
        """The stage-graph interpreter must produce y = F(x) + x for an
        identity block (pre-activation semantics)."""
        m = resnet_tiny(widths=(4, 8, 8), blocks_per_group=1, seed=0)
        # run just the stem + first block by hand
        x = Tensor(rng.normal(size=(1, 3, 16, 16)))
        stem = m.stage_defs[0].module
        conv1_unit = m.stage_defs[1].module
        conv2_unit = m.stage_defs[2].module
        assert m.stage_defs[3].kind == "sum"
        h = stem(x)
        manual = conv2_unit(conv1_unit(h)) + h

        # run the interpreter over the same four stages
        partial = StageGraphModel(
            m.stage_defs[:4] + [StageDef("loss", kind="loss")], name="partial"
        )
        np.testing.assert_allclose(partial(x).data, manual.data, atol=1e-12)

    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            StageGraphModel(
                [
                    StageDef("a", module=ReLU()),
                    StageDef("a", module=ReLU()),
                    StageDef("loss", kind="loss"),
                ]
            )

    def test_loss_must_be_last(self):
        with pytest.raises(ValueError):
            StageGraphModel([StageDef("a", module=ReLU())])

    def test_stagedef_validation(self):
        with pytest.raises(ValueError):
            StageDef("x", kind="compute")  # module required
        with pytest.raises(ValueError):
            StageDef("x", kind="sum", module=ReLU())  # no module allowed
        with pytest.raises(ValueError):
            StageDef("x", module=ReLU(), push_skip="bogus")
        with pytest.raises(ValueError):
            StageDef("x", module=ReLU(), push_skip="preact")  # needs unit
        with pytest.raises(ValueError):
            StageDef("x", module=ReLU(), channel=2)

    def test_param_stage_index_covers_all_params(self):
        m = resnet_tiny()
        mapping = m.param_stage_index()
        assert set(mapping.keys()) == {id(p) for p in m.parameters()}
        assert all(0 <= s < m.num_stages for s in mapping.values())

    def test_describe_mentions_every_stage(self):
        m = small_cnn()
        text = m.describe()
        for name in m.stage_names():
            assert name in text

    def test_all_registry_models_build(self):
        for name in MODEL_BUILDERS:
            kwargs = {"num_classes": 10}
            model = MODEL_BUILDERS[name](**kwargs) if name != "rn50" else None
            if model is not None:
                assert model.num_stages >= 4
