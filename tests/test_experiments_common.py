"""Unit tests for the experiment machinery (scales, nets, helpers)."""

import numpy as np
import pytest

from repro.experiments.common import (
    NETS,
    NET_TRAIN_TWEAKS,
    _tweaks_for,
    _warmup,
    dataset_for,
    mean_std,
)
from repro.experiments.scale import BENCH, PAPER, get_scale
from repro.experiments.tables import PAPER_TABLE1, _engine_for
from repro.models.registry import PAPER_STAGE_COUNTS


class TestScales:
    def test_bench_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "bench"

    def test_env_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError):
            get_scale()

    def test_paper_scale_is_bigger(self):
        assert PAPER.train_size > BENCH.train_size
        assert PAPER.points_per_decade > BENCH.points_per_decade
        assert PAPER.seeds == 5
        assert PAPER.width_divisor == 1


class TestNetSpecs:
    @pytest.mark.parametrize("key", sorted(NETS))
    def test_bench_models_keep_paper_stage_counts(self, key):
        model = NETS[key].model(BENCH, num_classes=10, seed=0)
        assert model.num_stages == PAPER_STAGE_COUNTS[key]

    def test_stage_count_guard_raises_on_mismatch(self):
        from dataclasses import replace

        from repro.experiments.common import NetSpec
        from repro.models.simple import small_cnn

        bad = NetSpec(
            key="rn20", family="rn",
            build=lambda scale, nc, seed: small_cnn(num_classes=nc),
        )
        with pytest.raises(AssertionError, match="stages"):
            bad.model(BENCH, 10, 0)

    def test_dataset_families(self):
        ds_rn = dataset_for(NETS["rn20"], BENCH)
        assert ds_rn.image_shape == (3, BENCH.rn_image, BENCH.rn_image)
        ds_vgg = dataset_for(NETS["vgg11"], BENCH)
        assert ds_vgg.image_shape == (3, BENCH.vgg_image, BENCH.vgg_image)
        ds_inet = dataset_for(NETS["rn50"], BENCH)
        assert ds_inet.num_classes == 20

    def test_bench_models_are_small(self):
        model = NETS["rn110"].model(BENCH, num_classes=10, seed=0)
        assert model.num_parameters() < 150_000  # full-width RN110: ~1.7M

    def test_paper_table1_covers_all_nets(self):
        assert set(PAPER_TABLE1) == set(PAPER_STAGE_COUNTS) - {"rn50"}


class TestHelpers:
    def test_warmup_ramps(self):
        sched = _warmup(1.0, 100, frac=0.2)
        assert sched(0) < sched(10) <= sched(20) == 1.0
        assert sched(99) == 1.0

    def test_tweaks_only_at_bench(self):
        from repro.models.simple import small_cnn

        model = NETS["rn110"].model(BENCH, num_classes=10, seed=0)
        assert _tweaks_for(model, BENCH) == NET_TRAIN_TWEAKS["rn110"]
        assert _tweaks_for(model, PAPER) == (1.0, 0.2)
        plain = small_cnn()
        assert _tweaks_for(plain, BENCH) == (1.0, 0.2)

    def test_engine_assignment(self):
        assert _engine_for("rn20", BENCH) == "executor"
        assert _engine_for("rn110", BENCH) == "sim"
        assert _engine_for("rn110", PAPER) == "executor"

    def test_mean_std(self):
        m, s = mean_std([1.0, 3.0])
        assert m == 2.0 and s == 1.0
