"""Fleet serving: SLO admission, autoscaling, least-loaded dispatch,
and zero-downtime rolling weight hot-swap.

The contract under test, layer by layer:

* **admission** (pure) — per-class queue shares and deadline pricing:
  interactive gets :class:`Overloaded` pushback *before* batch under
  the same measured queue pressure;
* **autoscaler** (pure, fake clock) — scale out on queue-wait p95,
  drain-and-retire after idle grace, both bounded and cooldown-gated;
* **router** (real replicas, sim runtime) — responses bit-exact with
  the offline reference, fleet ids resolved exactly once, draining
  replicas routed around, a reload under live traffic serving every
  request on either the old or the new weights (never garbage, never
  dropped);
* **fleet smoke** (``-m fleet``, process runtime) — the CI job: mixed
  SLO traffic across 2 process-backend replicas through a mid-run
  rolling reload with monotone per-class counters.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from functools import partial

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.pipeline import PipelineExecutor
from repro.pipeline.checkpoint import (
    CheckpointError,
    capture_checkpoint,
    checkpoint_fingerprint,
    save_checkpoint,
)
from repro.serve import InferenceSession, Overloaded
from repro.serve.fleet import (
    AdmissionController,
    AutoscalePolicy,
    FleetAutoscaler,
    FleetRouter,
    ReplicaSpec,
    SLOClass,
    default_slo_classes,
    rolling_reload,
)
from repro.serve.loadgen import run_classed_loop

FACTORY = partial(small_cnn, num_classes=10, widths=(8, 16), seed=11)
SHAPE = (3, 8, 8)


def _hex(a: np.ndarray) -> list[str]:
    return [v.hex() for v in np.asarray(a, dtype=np.float64).ravel()]


def _requests(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n,) + SHAPE)


def _make_checkpoint(path: str, label_seed: int) -> str:
    """Train the stock model briefly and checkpoint it; different
    ``label_seed`` values yield different weights (and fingerprints)."""
    model = FACTORY()
    engine = PipelineExecutor(model, lr=0.02, momentum=0.9, mode="pb")
    X = _requests(16, seed=5)
    Y = np.random.default_rng(label_seed).integers(0, 10, size=16)
    engine.train(X, Y)
    save_checkpoint(path, capture_checkpoint(engine))
    return path


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory) -> tuple[str, str]:
    """Two checkpoints of the same architecture with different weights
    (the before/after of every hot-swap test)."""
    root = tmp_path_factory.mktemp("fleet-ckpts")
    ck_a = _make_checkpoint(str(root / "a.ckpt"), label_seed=1)
    ck_b = _make_checkpoint(str(root / "b.ckpt"), label_seed=2)
    assert checkpoint_fingerprint(ck_a) != checkpoint_fingerprint(ck_b)
    return ck_a, ck_b


def _spec(**overrides) -> ReplicaSpec:
    kwargs = dict(
        model_factory=FACTORY,
        sample_shape=SHAPE,
        runtime="sim",
        micro_batch=4,
        max_queue=8,
    )
    kwargs.update(overrides)
    return ReplicaSpec(**kwargs)


def _reference_row(checkpoint: str, x: np.ndarray) -> np.ndarray:
    """Offline single-row forward on a checkpoint's weights — what a
    width-1 packet through any replica must match bit-for-bit."""
    session = InferenceSession.from_checkpoint(
        checkpoint, FACTORY, runtime="sim", micro_batch=1,
        sample_shape=SHAPE,
    )
    return session.forward_reference(x[None], micro_batch=1)[0]


# ---------------------------------------------------------------------------
# admission (pure)
# ---------------------------------------------------------------------------


class TestSLOClasses:
    def test_defaults(self):
        classes = default_slo_classes()
        assert set(classes) == {"interactive", "batch"}
        inter, batch = classes["interactive"], classes["batch"]
        assert inter.max_wait_s == 0.0  # no coalescing delay
        assert inter.deadline_s < batch.deadline_s
        assert inter.queue_share < batch.queue_share

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            SLOClass("x", deadline_s=0.0, max_wait_s=0.0)
        with pytest.raises(ValueError, match="max_wait"):
            SLOClass("x", deadline_s=1.0, max_wait_s=-1.0)
        with pytest.raises(ValueError, match="queue_share"):
            SLOClass("x", deadline_s=1.0, max_wait_s=0.0, queue_share=0.0)
        with pytest.raises(ValueError, match="headroom"):
            AdmissionController(deadline_headroom=0.0)
        with pytest.raises(ValueError, match="does not match"):
            AdmissionController(
                {"a": SLOClass("b", deadline_s=1.0, max_wait_s=0.0)}
            )


class TestAdmission:
    def test_resolve(self):
        ctrl = AdmissionController()
        assert ctrl.resolve(None).name == "interactive"
        assert ctrl.resolve("batch").name == "batch"
        with pytest.raises(ValueError, match="unknown SLO class"):
            ctrl.resolve("bulk")

    def test_aggregate_capacity_is_a_hard_cap(self):
        ctrl = AdmissionController()
        batch = ctrl.resolve("batch")
        ctrl.admit(batch, {"batch": 15}, capacity=16, queue_wait_p95=None)
        with pytest.raises(Overloaded, match="exhausted"):
            ctrl.admit(
                batch, {"batch": 16}, capacity=16, queue_wait_p95=None
            )

    def test_queue_share_limits_one_class_not_the_fleet(self):
        """Interactive at its share is pushed back while batch (share
        1.0) is still admitted into the same queue."""
        ctrl = AdmissionController()
        inter = ctrl.resolve("interactive")
        outstanding = {"interactive": 8}  # == 0.5 * 16
        with pytest.raises(Overloaded, match="queue share"):
            ctrl.admit(inter, outstanding, 16, None)
        ctrl.admit(ctrl.resolve("batch"), outstanding, 16, None)

    def test_interactive_pushed_back_before_batch(self):
        """The ordering claim: under identical measured queue pressure
        the tight-deadline class is rejected first."""
        ctrl = AdmissionController(deadline_headroom=0.5)
        inter, batch = ctrl.resolve("interactive"), ctrl.resolve("batch")
        busy = {"interactive": 4, "batch": 6}  # fleet genuinely queued
        # past interactive's budget (0.25 * 0.5) but inside batch's
        pressure = 0.2
        with pytest.raises(Overloaded, match="deadline pressure"):
            ctrl.admit(inter, busy, 16, pressure)
        ctrl.admit(batch, busy, 16, pressure)  # batch still admitted
        # crank pressure past batch's budget too (5.0 * 0.5)
        with pytest.raises(Overloaded, match="deadline pressure"):
            ctrl.admit(batch, busy, 16, 2.6)

    def test_stale_pressure_over_drained_queues_admits(self):
        """Deadline pressure is trailing; with the fleet's queues
        actually drained (below half occupancy) a leftover wait spike
        — reload turbulence — must not keep rejecting the tight class."""
        ctrl = AdmissionController(deadline_headroom=0.5)
        inter = ctrl.resolve("interactive")
        with pytest.raises(Overloaded, match="deadline pressure"):
            ctrl.admit(inter, {"batch": 8}, 16, 0.2)
        ctrl.admit(inter, {"batch": 7}, 16, 0.2)  # drained -> admitted
        ctrl.admit(inter, {}, 16, 0.2)

    def test_no_signal_admits_on_structure_alone(self):
        ctrl = AdmissionController()
        ctrl.admit(ctrl.resolve("interactive"), {}, 16, None)


# ---------------------------------------------------------------------------
# autoscaler (pure, fake clock)
# ---------------------------------------------------------------------------


class TestAutoscaler:
    def _scaler(self, **overrides) -> FleetAutoscaler:
        kwargs = dict(
            min_replicas=1,
            max_replicas=3,
            scale_out_wait_s=0.05,
            idle_grace_s=1.0,
            cooldown_s=0.5,
        )
        kwargs.update(overrides)
        return FleetAutoscaler(AutoscalePolicy(**kwargs))

    def test_scale_out_on_queue_wait(self):
        sc = self._scaler()
        assert sc.decide(0.0, 1, 0.01, outstanding=4) is None
        assert sc.decide(1.0, 1, 0.10, outstanding=4) == "out"
        # bounded by max_replicas
        assert sc.decide(10.0, 3, 0.10, outstanding=4) is None

    def test_cooldown_spaces_actions(self):
        sc = self._scaler()
        assert sc.decide(0.0, 1, 0.10, outstanding=4) == "out"
        assert sc.decide(0.1, 2, 0.10, outstanding=4) is None  # too soon
        assert sc.decide(0.9, 2, 0.10, outstanding=4) == "out"

    def test_scale_in_after_idle_grace(self):
        sc = self._scaler(cooldown_s=0.0)
        assert sc.decide(0.0, 2, None, outstanding=0) is None  # grace runs
        assert sc.decide(0.5, 2, None, outstanding=0) is None
        assert sc.decide(1.5, 2, None, outstanding=0) == "in"
        # bounded by min_replicas
        assert sc.decide(5.0, 1, None, outstanding=0) is None

    def test_outstanding_work_resets_idle_clock(self):
        sc = self._scaler(cooldown_s=0.0)
        assert sc.decide(0.0, 2, None, outstanding=0) is None
        assert sc.decide(0.9, 2, None, outstanding=3) is None  # busy again
        assert sc.decide(1.5, 2, None, outstanding=0) is None  # clock reset
        assert sc.decide(2.6, 2, None, outstanding=0) == "in"

    def test_decisions_are_logged(self):
        sc = self._scaler()
        sc.decide(1.0, 1, 0.10, outstanding=4)
        assert [(t, a) for t, a, _ in sc.events] == [(1.0, "out")]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match="scale_out_wait_s"):
            AutoscalePolicy(scale_out_wait_s=0.0)


# ---------------------------------------------------------------------------
# router (real replicas, sim runtime)
# ---------------------------------------------------------------------------


@pytest.mark.concurrency
class TestFleetRouter:
    def test_dispatch_answers_match_reference(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(micro_batch=1), 2, checkpoint=ck_a) as router:
            x = _requests(1, seed=3)[0]
            ref = _reference_row(ck_a, x)
            for _ in range(6):
                assert _hex(router.infer_one(x)) == _hex(ref)
            snap = router.snapshot()
        assert snap["submitted"] == 6
        assert snap["resolved"] == 6
        assert snap["duplicates"] == 0
        assert snap["completed_by_class"] == {"interactive": 6}

    def test_fleet_ids_are_monotone_and_resolved_once(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(), 2, checkpoint=ck_a) as router:
            x = _requests(1)[0]
            reqs = [router.submit(x, "batch") for _ in range(8)]
            for fr in reqs:
                fr.future.result(10.0)
            assert [fr.fleet_id for fr in reqs] == list(range(8))
            deadline = time.monotonic() + 5.0
            while router.outstanding and time.monotonic() < deadline:
                time.sleep(1e-3)
            snap = router.snapshot()
        assert snap["resolved"] == 8 and snap["duplicates"] == 0
        assert snap["outstanding"] == {"batch": 0}

    def test_unknown_class_is_refused_loudly(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(), 1, checkpoint=ck_a) as router:
            with pytest.raises(ValueError, match="unknown SLO class"):
                router.submit(_requests(1)[0], "bulk")

    def test_draining_replica_is_routed_around(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(), 2, checkpoint=ck_a) as router:
            names = sorted(router.replicas)
            router.replicas[names[0]].server.mark_draining("test drain")
            assert router.num_ready == 1
            x = _requests(1)[0]
            for _ in range(4):
                assert router.submit(x, "batch").replica == names[1]
            # nobody ready -> immediate, loud pushback
            router.replicas[names[1]].server.mark_draining("test drain")
            with pytest.raises(Overloaded, match="no ready replicas"):
                router.submit(x, "batch")
            assert router.snapshot()["rejected_by_class"] == {"batch": 1}

    def test_least_loaded_wins(self, checkpoints):
        """With one replica's queue preloaded, new traffic lands on the
        empty one."""
        ck_a, _ = checkpoints
        # flush width (micro_batch) wider than the parked load so the
        # parked requests stay queued (max_wait far away); the routed
        # request still flushes fast via its class max_wait override
        spec = _spec(max_wait=60.0, micro_batch=8)
        with FleetRouter(spec, 2, checkpoint=ck_a) as router:
            names = sorted(router.replicas)
            loaded = router.replicas[names[0]]
            # park requests in r0's batcher (max_wait keeps them queued)
            for _ in range(3):
                loaded.server.submit_request(
                    _requests(1)[0], max_wait=60.0
                )
            assert loaded.load >= 3
            fr = router.submit(_requests(1)[0], "batch")
            assert fr.replica == names[1]
            fr.future.result(10.0)
            router.replicas[names[0]].server.batcher.close()

    def test_rolling_reload_under_live_traffic(self, checkpoints):
        """The tentpole invariant: during a rolling hot-swap every
        response is bit-exact with the *old or new* weights' reference
        (never a torn mix), nothing is dropped or duplicated, at least
        one replica stays ready throughout, and the fleet ends with
        every replica on the new fingerprint."""
        ck_a, ck_b = checkpoints
        x = _requests(1, seed=7)[0]
        ref_old = _hex(_reference_row(ck_a, x))
        ref_new = _hex(_reference_row(ck_b, x))
        assert ref_old != ref_new
        spec = _spec(micro_batch=1)  # width-1 packets => stable reference
        with FleetRouter(spec, 3, checkpoint=ck_a) as router:
            stop = threading.Event()
            outputs: list[list[str]] = []
            failures: list[BaseException] = []

            def client():
                while not stop.is_set():
                    try:
                        fr = router.submit(x, "interactive")
                        outputs.append(_hex(fr.future.result(30.0)))
                    except Overloaded:
                        time.sleep(1e-4)
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)
                        return

            threads = [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.1)
            report = rolling_reload(router, ck_b)
            time.sleep(0.1)
            stop.set()
            for t in threads:
                t.join()
            snap = router.snapshot()
            assert not failures
            assert report.replicas_swapped == 3
            assert report.min_ready_observed >= 1  # zero-downtime
            assert report.fingerprint == checkpoint_fingerprint(ck_b)
            for state in snap["replicas"].values():
                assert state["fingerprint"] == report.fingerprint
                assert state["generation"] == 1
            # no torn responses: everything served is old or new weights
            torn = [o for o in outputs if o != ref_old and o != ref_new]
            assert torn == []
            assert ref_old in outputs  # traffic really spanned the swap
            assert ref_new in outputs
            # id accounting across the swap
            assert snap["duplicates"] == 0
            assert snap["submitted"] == snap["resolved"] + sum(
                snap["outstanding"].values()
            )
            assert snap["failed"] == 0

    def test_failed_reload_keeps_replica_serving_old_weights(
        self, checkpoints, tmp_path
    ):
        """A bad checkpoint (here: wrong architecture, which fails in
        restore) never takes a replica down — the swap aborts and the
        replica re-opens admission on its old weights."""
        ck_a, _ = checkpoints
        other_model = small_cnn(num_classes=10, widths=(4, 4), seed=1)
        eng = PipelineExecutor(other_model, lr=0.01, mode="pb")
        eng.train(_requests(8), np.zeros(8, dtype=int))
        wrong = str(tmp_path / "wrong.ckpt")
        save_checkpoint(wrong, capture_checkpoint(eng))
        with FleetRouter(_spec(), 1, checkpoint=ck_a) as router:
            (name,) = router.replicas
            replica = router.replicas[name]
            fp_before = replica.fingerprint
            with pytest.raises(CheckpointError):
                router.reload_replica(name, wrong)
            # the failed swap left the replica ready, on its old weights
            assert replica.ready
            assert replica.fingerprint == fp_before
            assert replica.generation == 0
            assert router.infer_one(_requests(1)[0]) is not None

    def test_autoscaler_grows_and_shrinks_through_router(self, checkpoints):
        from repro.serve.stats import RequestTiming

        ck_a, _ = checkpoints
        policy = AutoscalePolicy(
            min_replicas=1,
            max_replicas=2,
            scale_out_wait_s=0.001,
            idle_grace_s=0.0,
            cooldown_s=0.0,
        )
        with FleetRouter(
            _spec(), 1, checkpoint=ck_a, autoscale=policy
        ) as router:
            # no signal yet: hold
            assert router.tick() is None
            # feed the fleet stats a slow-queue reading -> scale out
            now = time.monotonic()
            for i in range(4):
                router.stats.record(
                    RequestTiming(
                        request_id=i, queue_wait=0.05,
                        pipeline_time=0.01, latency=0.06,
                    ),
                    now,
                )
            assert router.tick() == "out"
            assert len(router.replicas) == 2
            assert router.num_ready == 2
            # at max_replicas + idle -> drain-and-retire back to min
            # (the pressure reading persists in the stats window, so
            # the min_replicas floor itself is pinned in the pure
            # autoscaler tests above, on a controllable signal)
            assert router.tick() == "in"
            assert len(router.replicas) == 1
            assert router.num_ready == 1

    def test_scale_out_joins_on_current_weights(self, checkpoints):
        """A replica added after a reload restores the *reloaded*
        checkpoint, not the one the fleet booted with."""
        ck_a, ck_b = checkpoints
        with FleetRouter(_spec(), 1, checkpoint=ck_a) as router:
            rolling_reload(router, ck_b)
            grown = router.add_replica()
            assert grown.fingerprint == checkpoint_fingerprint(ck_b)


# ---------------------------------------------------------------------------
# HTTP front door
# ---------------------------------------------------------------------------


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, payload: dict) -> tuple[int, dict]:
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.concurrency
class TestFleetHTTP:
    def test_front_door(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(micro_batch=1), 2, checkpoint=ck_a) as router:
            host, port = router.serve_http()
            base = f"http://{host}:{port}"
            x = _requests(1, seed=9)[0]
            ref = _hex(_reference_row(ck_a, x))

            code, body = _post(
                f"{base}/infer", {"x": x.tolist(), "class": "batch"}
            )
            assert code == 200
            assert body["class"] == "batch"
            assert body["replica"] in router.replicas
            assert _hex(np.asarray(body["logits"])) == ref

            code, body = _get(f"{base}/healthz")
            assert code == 200 and body["ok"] and body["replicas"] == 2
            code, body = _get(f"{base}/readyz")
            assert code == 200 and body["ready"]
            assert body["num_ready"] == 2
            code, body = _get(f"{base}/stats")
            assert code == 200
            assert body["completed_by_class"] == {"batch": 1}
            assert body["duplicates"] == 0

            code, body = _post(f"{base}/infer", {"x": x.tolist(), "class": 3})
            assert code == 400
            code, body = _post(
                f"{base}/infer", {"x": x.tolist(), "class": "bulk"}
            )
            assert code == 400 and "unknown SLO class" in body["error"]

    def test_readyz_degrades_with_the_fleet(self, checkpoints):
        ck_a, _ = checkpoints
        with FleetRouter(_spec(), 2, checkpoint=ck_a) as router:
            host, port = router.serve_http()
            base = f"http://{host}:{port}"
            names = sorted(router.replicas)
            router.replicas[names[0]].server.mark_draining("reloading")
            code, body = _get(f"{base}/readyz")
            assert code == 200  # one replica down, fleet still ready
            assert body["num_ready"] == 1
            assert body["replicas"][names[0]]["reason"] == "reloading"
            router.replicas[names[1]].server.mark_draining("reloading")
            code, body = _get(f"{base}/readyz")
            assert code == 503 and not body["ready"]

    def test_replica_readyz_vs_healthz(self, checkpoints):
        """Satellite: per-replica liveness and readiness are separate
        probes — a draining replica is alive (healthz 200, unchanged
        shape) but not ready (readyz 503 with reason+fingerprint)."""
        ck_a, _ = checkpoints
        with FleetRouter(_spec(), 1, checkpoint=ck_a) as router:
            (name,) = router.replicas
            replica = router.replicas[name]
            host, port = replica.server.serve_http()
            base = f"http://{host}:{port}"
            code, body = _get(f"{base}/healthz")
            assert code == 200
            assert set(body) == {"ok", "model", "fingerprint", "runtime"}
            code, body = _get(f"{base}/readyz")
            assert code == 200 and body["ready"]
            assert body["reason"] == "serving"
            replica.server.mark_draining("reloading")
            code, body = _get(f"{base}/healthz")
            assert code == 200 and body["ok"]  # alive while draining
            code, body = _get(f"{base}/readyz")
            assert code == 503 and not body["ready"]
            assert body["reason"] == "reloading"
            assert body["fingerprint"] == replica.fingerprint
            replica.server.mark_ready()
            code, body = _get(f"{base}/readyz")
            assert code == 200 and body["reason"] == "serving"


# ---------------------------------------------------------------------------
# fleet smoke (CI job: pytest -m fleet)
# ---------------------------------------------------------------------------


@pytest.mark.fleet
@pytest.mark.concurrency(timeout=300)
class TestFleetSmoke:
    def test_process_fleet_mixed_slo_with_rolling_reload(
        self, checkpoints, tmp_path
    ):
        """2 process-backend replicas, mixed interactive/batch closed
        loop, a rolling reload mid-run: zero dropped/duplicated ids,
        every client answered, per-class counters monotone."""
        ck_a, ck_b = checkpoints
        spec = _spec(runtime="process", micro_batch=4, max_queue=8)
        x_pool = _requests(8, seed=21)
        with FleetRouter(spec, 2, checkpoint=ck_a) as router:
            observed: list[dict] = []

            def sample() -> None:
                snap = router.snapshot()
                observed.append(
                    {
                        "completed_by_class": dict(
                            snap["completed_by_class"]
                        ),
                        "completed": snap["completed"],
                    }
                )

            reload_done = threading.Event()

            def mid_run_reload() -> None:
                time.sleep(0.3)
                sample()
                rolling_reload(router, ck_b)
                sample()
                reload_done.set()

            swapper = threading.Thread(target=mid_run_reload)
            swapper.start()
            result = run_classed_loop(
                lambda x, slo: router.submit(x, slo).future.result(60.0),
                x_pool,
                num_requests=120,
                concurrency=4,
                mix={"interactive": 0.7, "batch": 0.3},
                label="fleet-smoke",
            )
            swapper.join()
            sample()
            snap = router.snapshot()

            assert reload_done.is_set()
            # every client answered (closed loop: lost => raised)
            assert len(result.combined.outputs) == 120
            assert snap["duplicates"] == 0
            assert snap["submitted"] == snap["resolved"]  # nothing dropped
            assert snap["failed"] == 0
            # per-class counters are cumulative and monotone across the
            # reload (fleet stats must not reset with server generations)
            for cls in ("interactive", "batch"):
                series = [
                    o["completed_by_class"].get(cls, 0) for o in observed
                ]
                assert series == sorted(series)
            totals = snap["completed_by_class"]
            assert totals["interactive"] + totals["batch"] == snap["completed"]
            # the swap really happened, on-line
            for state in snap["replicas"].values():
                assert state["generation"] == 1
                assert state["fingerprint"] == checkpoint_fingerprint(ck_b)
