"""SpecTrain semantics: vertical-sync horizons, backward re-prediction."""

import numpy as np
import pytest

from repro.core import DelayedSGDM, MitigationConfig, delayed_train_step
from repro.models import small_cnn
from repro.pipeline import PipelineExecutor
from repro.tensor import Tensor, cross_entropy


class TestSpectrainSimulator:
    def test_backward_weights_are_repredicted(self, rng):
        """With a nonzero offset, the backward pass must see weights
        different from both the stale forward weights and the master."""
        X = rng.normal(size=(16, 3, 8, 8))
        Y = rng.integers(0, 10, size=16)
        m = small_cnn(seed=3)
        mit = MitigationConfig.spectrain(offset=2.0)
        opt = DelayedSGDM(m, lr=0.05, momentum=0.9, delay=3,
                          mitigation=mit, consistent=False)
        p = m.parameters()[0]
        # a few steps to build velocity
        for i in range(4):
            delayed_train_step(opt, m, X[i * 4 : (i + 1) * 4],
                               Y[i * 4 : (i + 1) * 4])
        opt.begin_step()
        master = p.data.copy()
        opt.load_forward_weights()
        fwd = p.data.copy()
        logits = m(Tensor(X[:4]))
        loss = cross_entropy(logits, Y[:4])
        opt.prepare_backward()
        bwd = p.data.copy()
        assert not np.array_equal(bwd, fwd)
        assert not np.array_equal(bwd, master)
        # bwd = master - lr * offset * velocity
        expected = master - 0.05 * 2.0 * opt.velocity(p)
        np.testing.assert_allclose(bwd, expected, atol=1e-12)
        opt.zero_grad()
        loss.backward()
        opt.step()

    def test_zero_offset_backward_is_master(self, rng):
        X = rng.normal(size=(8, 3, 8, 8))
        Y = rng.integers(0, 10, size=8)
        m = small_cnn(seed=3)
        mit = MitigationConfig.spectrain(offset=0.0)
        opt = DelayedSGDM(m, lr=0.05, momentum=0.9, delay=2,
                          mitigation=mit, consistent=False)
        delayed_train_step(opt, m, X[:4], Y[:4])
        p = m.parameters()[0]
        opt.begin_step()
        master = p.data.copy()
        opt.load_forward_weights()
        m(Tensor(X[4:]))
        opt.prepare_backward()
        np.testing.assert_array_equal(p.data, master)
        opt._loaded = False  # abandon the half-finished step cleanly


class TestSpectrainExecutor:
    def test_stage_horizons_follow_vertical_sync(self, rng):
        """Forward horizon D_s + s, backward horizon s (Appendix C)."""
        m = small_cnn(seed=3)
        ex = PipelineExecutor(
            m, lr=0.01, momentum=0.9, mode="pb",
            mitigation=MitigationConfig.spectrain(),
        )
        S = m.num_stages
        for s, stage in enumerate(ex.stages):
            pred = stage.mitigation.prediction
            d = 2 * (S - 1 - s)
            assert pred.forward_horizon(d, offset=float(s)) == d + s
            assert pred.backward_horizon(offset=float(s)) == s

    def test_executor_spectrain_trains_finite(self, rng):
        X = rng.normal(size=(20, 3, 8, 8))
        Y = rng.integers(0, 10, size=20)
        m = small_cnn(seed=3)
        ex = PipelineExecutor(
            m, lr=0.002, momentum=0.99, mode="pb",
            mitigation=MitigationConfig.spectrain(),
        )
        stats = ex.train(X, Y)
        assert np.all(np.isfinite(stats.losses))
        assert all(np.all(np.isfinite(p.data)) for p in m.parameters())

    def test_spectrain_differs_from_lwp_in_executor(self, rng):
        """The backward re-prediction must change the trajectory."""
        X = rng.normal(size=(16, 3, 8, 8))
        Y = rng.integers(0, 10, size=16)
        results = []
        for mit in (MitigationConfig.spectrain(), MitigationConfig.lwp()):
            m = small_cnn(seed=3)
            PipelineExecutor(
                m, lr=0.01, momentum=0.9, mode="pb", mitigation=mit
            ).train(X, Y)
            results.append([p.data.copy() for p in m.parameters()])
        diffs = [np.abs(a - b).max() for a, b in zip(*results)]
        assert max(diffs) > 1e-12
